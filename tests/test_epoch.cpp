// Epoch'd control plane tests (DESIGN.md §10): banked rule-table staging
// and atomic commit, the switch's two-phase install/flip protocol, the
// controller's last-good failsafe (rollback on dead ingress, out-of-order
// reroute convergence, crash resync, stale heartbeat verdicts, query
// failure callbacks, the blackhole repair bound), collector→controller
// backpressure modes, and a chaos-matrix determinism check.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "controller/controller.hpp"
#include "core/collector.hpp"
#include "fault/fault_injector.hpp"
#include "net/topology.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulation.hpp"
#include "switchsim/rule_table.hpp"
#include "switchsim/switch.hpp"
#include "te/planck_te.hpp"
#include "workload/testbed.hpp"

namespace planck {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

net::FlowKey make_key(int src, int dst) {
  return net::FlowKey{net::host_ip(src), net::host_ip(dst), 10000, 5001,
                      net::Protocol::kTcp};
}

switchsim::RuleActions rewrite_to(int dst, int tree) {
  switchsim::RuleActions actions;
  actions.set_dst_mac = net::host_mac(dst, tree);
  return actions;
}

// ---------------------------------------------------------------------------
// RuleTable: banked staging semantics
// ---------------------------------------------------------------------------

TEST(RuleTableEpoch, StagedProgramInvisibleUntilCommit) {
  switchsim::RuleTable rules;
  rules.set_mac_rule(net::host_mac(1), switchsim::RuleActions{2, {}});
  const net::FlowKey key = make_key(0, 1);

  ASSERT_TRUE(rules.begin_staging(1));
  ASSERT_TRUE(rules.stage_flow_rule(1, key, rewrite_to(1, 2)));
  // The data plane reads the active bank: nothing staged is served.
  EXPECT_EQ(rules.find_flow(key), nullptr);
  EXPECT_EQ(rules.flow_rule_count(), 0u);
  EXPECT_TRUE(rules.staging());
  EXPECT_EQ(rules.staged_epoch(), 1u);

  ASSERT_TRUE(rules.commit_staged(1));
  EXPECT_EQ(rules.committed_epoch(), 1u);
  EXPECT_FALSE(rules.staging());
  ASSERT_NE(rules.find_flow(key), nullptr);
  // The staging copy carried the pre-existing MAC program along.
  EXPECT_NE(rules.find_mac(net::host_mac(1)), nullptr);
}

TEST(RuleTableEpoch, NewestProgramWinsStaging) {
  switchsim::RuleTable rules;
  ASSERT_TRUE(rules.begin_staging(1));
  ASSERT_TRUE(rules.commit_staged(1));

  // A program at or below the committed epoch is stale on arrival.
  EXPECT_FALSE(rules.begin_staging(1));

  const net::FlowKey key = make_key(0, 1);
  ASSERT_TRUE(rules.begin_staging(2));
  ASSERT_TRUE(rules.stage_flow_rule(2, key, rewrite_to(1, 1)));
  // Duplicate delivery of the open epoch is an idempotent no-op: the
  // already-staged rule survives.
  ASSERT_TRUE(rules.begin_staging(2));
  ASSERT_TRUE(rules.commit_staged(2));
  EXPECT_NE(rules.find_flow(key), nullptr);

  // A newer program supersedes an open staging; the loser's writes and
  // commit then bounce.
  ASSERT_TRUE(rules.begin_staging(3));
  ASSERT_TRUE(rules.begin_staging(4));
  EXPECT_EQ(rules.staged_epoch(), 4u);
  EXPECT_FALSE(rules.stage_flow_rule(3, key, rewrite_to(1, 3)));
  EXPECT_FALSE(rules.commit_staged(3));
  EXPECT_FALSE(rules.begin_staging(3));  // cannot re-open under a newer one
  ASSERT_TRUE(rules.commit_staged(4));
  EXPECT_EQ(rules.committed_epoch(), 4u);

  // Duplicate commit of the live epoch acks idempotently.
  EXPECT_TRUE(rules.commit_staged(4));
}

TEST(RuleTableEpoch, AbortAndCrashDiscardStagedPrograms) {
  switchsim::RuleTable rules;
  const net::FlowKey key = make_key(0, 1);

  ASSERT_TRUE(rules.begin_staging(1));
  ASSERT_TRUE(rules.stage_flow_rule(1, key, rewrite_to(1, 1)));
  EXPECT_FALSE(rules.abort_staged(2));  // wrong epoch: no-op
  ASSERT_TRUE(rules.abort_staged(1));
  EXPECT_FALSE(rules.staging());
  EXPECT_FALSE(rules.commit_staged(1));  // nothing to flip
  EXPECT_EQ(rules.find_flow(key), nullptr);
  EXPECT_EQ(rules.committed_epoch(), 0u);

  // Crash path: whatever is staged dies with the DRAM.
  ASSERT_TRUE(rules.begin_staging(2));
  rules.discard_staging();
  EXPECT_FALSE(rules.staging());
  EXPECT_FALSE(rules.commit_staged(2));
}

TEST(RuleTableEpoch, StagedEraseRemovesRuleOnCommit) {
  switchsim::RuleTable rules;
  const net::FlowKey key = make_key(0, 1);
  rules.set_flow_rule(key, rewrite_to(1, 1));

  ASSERT_TRUE(rules.begin_staging(1));
  ASSERT_TRUE(rules.stage_flow_erase(1, key));
  EXPECT_NE(rules.find_flow(key), nullptr);  // still served until the flip
  ASSERT_TRUE(rules.commit_staged(1));
  EXPECT_EQ(rules.find_flow(key), nullptr);
}

// ---------------------------------------------------------------------------
// Switch: two-phase install/flip
// ---------------------------------------------------------------------------

TEST(SwitchEpoch, CommitDeferredPastPendingInstalls) {
  sim::Simulation sim;
  switchsim::Switch sw(sim, "s0", 4, switchsim::SwitchConfig{});
  const net::FlowKey key = make_key(0, 1);

  ASSERT_TRUE(sw.stage_reroute(2, key, rewrite_to(1, 2), sim::milliseconds(5)));
  // The commit RPC is accepted immediately but the flip waits for the TCAM
  // write: a half-installed program is never served.
  ASSERT_TRUE(sw.commit_epoch(2));
  sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(sw.committed_epoch(), 0u);
  EXPECT_EQ(sw.rules().find_flow(key), nullptr);

  sim.run_until(sim::milliseconds(6));
  EXPECT_EQ(sw.committed_epoch(), 2u);
  EXPECT_NE(sw.rules().find_flow(key), nullptr);
  EXPECT_EQ(sw.epochs_committed(), 1u);
  EXPECT_EQ(sw.epochs_aborted(), 0u);

  // Duplicate commit of the live epoch still acks.
  EXPECT_TRUE(sw.commit_epoch(2));
  // Commits for unknown programs do not.
  EXPECT_FALSE(sw.commit_epoch(7));
}

TEST(SwitchEpoch, CrashDiscardsStagingAndSoftState) {
  sim::Simulation sim;
  switchsim::Switch sw(sim, "s0", 4, switchsim::SwitchConfig{});
  const net::FlowKey key = make_key(0, 1);

  // A committed program with a flow rule, then a newer one mid-install.
  ASSERT_TRUE(sw.stage_reroute(1, key, rewrite_to(1, 1), sim::microseconds(1)));
  ASSERT_TRUE(sw.commit_epoch(1));
  sim.run_until(sim::microseconds(10));
  ASSERT_EQ(sw.committed_epoch(), 1u);
  ASSERT_TRUE(sw.stage_reroute(2, key, rewrite_to(1, 2), sim::milliseconds(5)));

  sw.set_online(false);
  sw.set_online(true);
  // Staging lived in DRAM; flow rules are controller soft state. Only the
  // flash-backed program version (and MAC tables) survive the reboot.
  EXPECT_FALSE(sw.rules().staging());
  EXPECT_EQ(sw.rules().find_flow(key), nullptr);
  EXPECT_EQ(sw.committed_epoch(), 1u);

  // The in-flight TCAM write for the discarded program lands on nothing.
  sim.run_until(sim::milliseconds(10));
  EXPECT_EQ(sw.rules().find_flow(key), nullptr);
  EXPECT_EQ(sw.committed_epoch(), 1u);
  // And the dead program can no longer be committed.
  EXPECT_FALSE(sw.commit_epoch(2));
}

// ---------------------------------------------------------------------------
// Controller: failsafe, resync, heartbeat sequencing, query failures
// ---------------------------------------------------------------------------

struct FatTree {
  explicit FatTree(TestbedConfig cfg = {})
      : graph(net::make_fat_tree_16(
            net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)})),
        bed(sim, graph, cfg) {}

  int edge_node_of_host(int host) const {
    const net::TopologyShape& shape = graph.shape();
    return graph.switch_node(shape.edge_switch_index(
        shape.pod_of_host(host), shape.edge_of_host(host)));
  }

  sim::Simulation sim;
  net::TopologyGraph graph;
  Testbed bed;
};

TEST(EpochControl, InstallRoutesStampsBaseEpoch) {
  FatTree f;
  EXPECT_GE(f.bed.controller().epochs().last_epoch(), 1u);
  for (int i = 0; i < f.bed.num_switches(); ++i) {
    EXPECT_EQ(f.bed.switch_by_index(i)->committed_epoch(), 1u)
        << "switch " << i << " not on the base route program";
    EXPECT_FALSE(f.bed.switch_by_index(i)->rules().staging());
  }
}

TEST(EpochControl, FailedRerouteRollsBackToLastGood) {
  TestbedConfig cfg;
  cfg.controller_config.channel.rpc_timeout = sim::microseconds(500);
  cfg.controller_config.channel.rpc_max_attempts = 4;
  FatTree f(cfg);
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::FlowKey key = make_key(0, 15);
  const int ingress = f.edge_node_of_host(0);

  inj.crash_switch(ingress);
  const std::uint64_t epoch =
      f.bed.controller().reroute_flow(key, 3,
                                      controller::RerouteMechanism::kOpenFlow);
  EXPECT_GT(epoch, 1u);
  // Optimistic assignment, visible immediately (what TE reads back)...
  EXPECT_EQ(f.bed.controller().tree_of(key), 3);

  // ...reconciled once the stage RPC exhausts its budget against the dead
  // ingress: nothing was applied, so the assignment reverts to last-good.
  f.sim.run_until(sim::milliseconds(50));
  EXPECT_EQ(f.bed.controller().tree_of(key), 0);
  EXPECT_GE(f.bed.controller().failed_reroutes(), 1u);
  EXPECT_GE(f.bed.controller().epochs().fallbacks(), 1u);
  // The dead switch never saw the program.
  EXPECT_EQ(f.bed.switch_by_node(ingress)->committed_epoch(), 1u);
}

TEST(EpochControl, OutOfOrderReroutesConvergeToNewestEpoch) {
  FatTree f;
  const net::FlowKey key = make_key(0, 15);
  const int ingress = f.edge_node_of_host(0);
  controller::Controller& ctrl = f.bed.controller();

  // A slow OpenFlow program (TCAM install + deferred flip) immediately
  // followed by a fast ARP program for the same flow: the ARP epoch is
  // newer and commits first, so the flow must converge on its tree even
  // though the OpenFlow rule — which would outrank it in the data plane —
  // is acked later.
  const std::uint64_t of_epoch =
      ctrl.reroute_flow(key, 1, controller::RerouteMechanism::kOpenFlow);
  const std::uint64_t arp_epoch =
      ctrl.reroute_flow(key, 2, controller::RerouteMechanism::kArp);
  ASSERT_GT(arp_epoch, of_epoch);

  f.sim.run_until(sim::seconds(1));
  EXPECT_EQ(ctrl.tree_of(key), 2);
  EXPECT_GE(ctrl.epochs().stale_commits(), 1u);
  // The stale rule was reconciled away (or superseded before its flip):
  // the ingress data plane carries no 5-tuple rule for the flow, and its
  // live program is the reconciliation epoch.
  EXPECT_EQ(f.bed.switch_by_node(ingress)->rules().find_flow(key), nullptr);
  EXPECT_EQ(f.bed.switch_by_node(ingress)->committed_epoch(), arp_epoch + 1);
  EXPECT_FALSE(ctrl.epochs().in_flight(key));
}

TEST(EpochControl, RecoveredSwitchResyncsToCurrentEpoch) {
  TestbedConfig cfg;
  cfg.controller_config.heartbeat_interval = sim::milliseconds(2);
  cfg.controller_config.channel.rpc_timeout = sim::microseconds(500);
  cfg.controller_config.channel.rpc_max_attempts = 4;
  FatTree f(cfg);
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::FlowKey key = make_key(0, 15);
  const int ingress = f.edge_node_of_host(0);
  controller::Controller& ctrl = f.bed.controller();

  ctrl.reroute_flow(key, 2, controller::RerouteMechanism::kOpenFlow);
  f.sim.run_until(sim::milliseconds(20));
  ASSERT_NE(f.bed.switch_by_node(ingress)->rules().find_flow(key), nullptr);
  const std::uint64_t pre_crash = f.bed.switch_by_node(ingress)->committed_epoch();

  // The crash wipes the rule (controller soft state)...
  inj.crash_switch(ingress);
  EXPECT_EQ(f.bed.switch_by_node(ingress)->rules().find_flow(key), nullptr);
  f.sim.run_until(sim::milliseconds(40));
  EXPECT_FALSE(ctrl.switch_alive(ingress));

  // ...and recovery re-syncs the switch to the current epoch: the heartbeat
  // resurrects it and the controller reinstalls what it believes the
  // switch carries, under a fresh program.
  inj.restore_switch(ingress);
  f.sim.run_until(sim::milliseconds(80));
  EXPECT_TRUE(ctrl.switch_alive(ingress));
  EXPECT_GE(ctrl.resyncs(), 1u);
  const auto* rule = f.bed.switch_by_node(ingress)->rules().find_flow(key);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->actions.set_dst_mac, net::host_mac(15, 2));
  EXPECT_EQ(ctrl.tree_of(key), 2);
  EXPECT_GT(f.bed.switch_by_node(ingress)->committed_epoch(), pre_crash);
}

TEST(EpochControl, StaleProbeVerdictsNeverFlapARecoveredSwitch) {
  TestbedConfig cfg;
  cfg.controller_config.heartbeat_interval = sim::milliseconds(2);
  cfg.controller_config.channel.rpc_timeout = sim::microseconds(500);
  cfg.controller_config.channel.rpc_max_attempts = 4;  // ~7.5 ms fail budget
  FatTree f(cfg);
  fault::FaultInjector inj(f.sim, f.bed, 1);
  controller::Controller& ctrl = f.bed.controller();

  std::vector<std::pair<int, bool>> status;
  ctrl.subscribe_switch_status(
      [&](int node, bool alive) { status.emplace_back(node, alive); });

  // Outage shorter than a probe's failure budget: rounds probing the dead
  // window complete long after later rounds already proved the switch
  // alive again. Without round sequencing those slow "dead" verdicts land
  // last and flap a healthy switch.
  const int core_node =
      f.graph.switch_node(f.graph.shape().core_switch_index(0));
  inj.schedule_switch_outage(sim::microseconds(2500), sim::microseconds(7900),
                             core_node);

  f.sim.run_until(sim::milliseconds(50));
  EXPECT_TRUE(ctrl.switch_alive(core_node));
  EXPECT_GE(ctrl.stale_probe_results(), 1u);
  for (const auto& [node, alive] : status) {
    EXPECT_TRUE(alive) << "switch " << node << " flapped dead on a stale "
                       << "probe verdict";
  }
}

TEST(EpochControl, QueryFailureCallbackFiresOnLossExactlyOnce) {
  TestbedConfig cfg;
  cfg.controller_config.channel.loss_prob = 1.0;  // the channel eats both legs
  cfg.controller_config.heartbeat_interval = 0;   // isolate the query path
  FatTree f(cfg);
  const net::PathHop hop = f.bed.controller().routing().path(0, 4, 0).hops[0];

  int replies = 0;
  int failures = 0;
  f.bed.controller().query_link_utilization(
      hop.switch_node, hop.out_port, [&](double) { ++replies; },
      [&] { ++failures; });
  f.sim.run_until(sim::seconds(1));
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(f.bed.controller().query_timeouts(), 1u);
}

TEST(EpochControl, QuerySuccessSuppressesFailureCallback) {
  FatTree f;
  const net::PathHop hop = f.bed.controller().routing().path(0, 4, 0).hops[0];

  int replies = 0;
  int failures = 0;
  f.bed.controller().query_link_utilization(
      hop.switch_node, hop.out_port, [&](double) { ++replies; },
      [&] { ++failures; });
  f.sim.run_until(sim::seconds(1));
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(f.bed.controller().query_timeouts(), 0u);
}

TEST(EpochControl, QueryOfflineCollectorFailsFast) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::PathHop hop = f.bed.controller().routing().path(0, 4, 0).hops[0];
  inj.crash_collector(hop.switch_node);

  int replies = 0;
  int failures = 0;
  f.bed.controller().query_link_utilization(
      hop.switch_node, hop.out_port, [&](double) { ++replies; },
      [&] { ++failures; });
  f.sim.run_until(sim::seconds(1));
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(failures, 1);
}

// The default repair bound, without materializing a config at each use.
sim::Duration cfg_bound() {
  return controller::ControllerConfig{}.max_blackhole_window;
}

TEST(EpochControl, BlackholedFlowRepairedWithinBound) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  controller::Controller& ctrl = f.bed.controller();

  tcp::FlowStats stats;
  f.bed.host(0)->start_flow(net::host_ip(4), 5001, 20 * 1024 * 1024,
                            [&](const tcp::FlowStats& s) { stats = s; });
  const net::PathHop hop = ctrl.routing().path(0, 4, 0).hops[1];
  inj.schedule_link_outage(sim::milliseconds(5), sim::seconds(10),
                           hop.switch_node, hop.out_port);

  f.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(stats.complete);
  EXPECT_GE(ctrl.failovers(), 1u);
  // The repair beat the contract bound (the heartbeat contract-asserts
  // this too, when contracts are compiled in) and nothing stayed dark.
  EXPECT_LE(ctrl.max_blackhole_observed(), cfg_bound());
  EXPECT_EQ(ctrl.blackholed_flows(), 0u);
}

// ---------------------------------------------------------------------------
// Collector backpressure modes
// ---------------------------------------------------------------------------

net::Packet make_sample(int src, int dst, std::uint64_t seq) {
  net::Packet p;
  p.src_mac = net::host_mac(src);
  p.dst_mac = net::host_mac(dst);
  p.src_ip = net::host_ip(src);
  p.dst_ip = net::host_ip(dst);
  p.src_port = 10000;
  p.dst_port = 5001;
  p.proto = net::Protocol::kTcp;
  p.seq = seq;
  p.payload = 1460;
  return p;
}

struct CollectorBed {
  explicit CollectorBed(core::CollectorConfig cfg)
      : collector(sim, "c0", 99, cfg) {
    net::SwitchRouteView view;
    view.out_port_by_dst[net::host_mac(1)] = 1;
    view.in_port_by_pair[net::MacPair{net::host_mac(0), net::host_mac(1)}] =
        0;
    collector.update_route_view(view);
    collector.set_link_capacity(1, 10'000'000'000);
    collector.subscribe_congestion(
        [this](const core::CongestionEvent&) { ++delivered; });
  }

  /// Feeds a congesting (95% of capacity) sample stream for flow 0->1.
  void feed(sim::Duration duration) {
    const double interval = 1460 * 8.0 / 9.5e9 * 1e9;
    const sim::Time start = sim.now();
    for (double t = 0; t < static_cast<double>(duration); t += interval) {
      sim.schedule_at(start + static_cast<sim::Time>(t), [this] {
        collector.handle_packet(make_sample(0, 1, seq_), 0);
        seq_ += 1460;
      });
    }
    sim.run_until(start + duration);
  }

  sim::Simulation sim;
  core::Collector collector;
  int delivered = 0;
  std::uint64_t seq_ = 0;
};

TEST(Backpressure, ZeroCapacityIsLegacySynchronousDispatch) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(200);
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(3));
  EXPECT_GT(b.delivered, 0);
  EXPECT_EQ(b.collector.backpressure_mode(), core::BackpressureMode::kNormal);
  EXPECT_EQ(b.collector.mode_changes(), 0u);
  EXPECT_EQ(b.collector.events_queued(), 0u);
  EXPECT_EQ(b.collector.events_dispatched(), 0u);  // never queued
}

TEST(Backpressure, QueuedEventsDrainAtIngestRate) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(500);
  cfg.backpressure.queue_capacity = 64;
  cfg.backpressure.drain_interval = sim::microseconds(100);
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(3));
  b.sim.run_until(b.sim.now() + sim::milliseconds(20));
  EXPECT_GT(b.delivered, 0);
  EXPECT_EQ(b.delivered,
            static_cast<int>(b.collector.events_dispatched()));
  EXPECT_EQ(b.collector.events_queued(), 0u);  // fully drained
  EXPECT_EQ(b.collector.events_shed(), 0u);
}

TEST(Backpressure, ShedModeDropsEventsUntilQueueDrains) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(50);
  cfg.backpressure.queue_capacity = 8;
  cfg.backpressure.shed_watermark = 4;
  cfg.backpressure.drain_interval = sim::milliseconds(2);  // slow controller
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(5));
  // Detection outpaced the drain: the watermark engaged shed mode.
  EXPECT_GT(b.collector.events_shed(), 0u);
  EXPECT_GE(b.collector.mode_changes(), 1u);
  // Once the storm passes the queue drains and the mode steps back down
  // (hysteresis: below half the watermark).
  b.sim.run_until(b.sim.now() + sim::milliseconds(50));
  EXPECT_EQ(b.collector.backpressure_mode(), core::BackpressureMode::kNormal);
  EXPECT_EQ(b.collector.events_queued(), 0u);
  EXPECT_GE(b.collector.mode_changes(), 2u);
  EXPECT_GT(b.delivered, 0);  // degraded, not dark
}

TEST(Backpressure, SampleDownDecimatesTheSampleStream) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(50);
  cfg.backpressure.queue_capacity = 64;
  cfg.backpressure.sample_down_watermark = 2;
  cfg.backpressure.sample_down_factor = 4;
  cfg.backpressure.drain_interval = sim::milliseconds(2);
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(5));
  EXPECT_GT(b.collector.samples_sampled_down(), 0u);
  // Decimation skips estimator work but the stream still lands: received
  // counts every arrival.
  EXPECT_GT(b.collector.samples_received(),
            b.collector.samples_sampled_down());
}

TEST(Backpressure, SweepOnlyDegradationStillReportsCongestion) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(50);
  cfg.sweep_interval = sim::milliseconds(1);
  cfg.backpressure.queue_capacity = 64;
  cfg.backpressure.sweep_watermark = 2;
  cfg.backpressure.drain_interval = sim::milliseconds(2);
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(6));
  // The per-sample fast path stood down...
  EXPECT_GT(b.collector.events_deferred_to_sweep(), 0u);
  // ...but the sweep kept firing (at most one event per link per period),
  // so the controller still hears about the hot link.
  b.sim.run_until(b.sim.now() + sim::milliseconds(50));
  EXPECT_GT(b.delivered, 0);
}

TEST(Backpressure, CrashShedsTheQueue) {
  core::CollectorConfig cfg;
  cfg.event_debounce = sim::microseconds(50);
  cfg.backpressure.queue_capacity = 64;
  cfg.backpressure.drain_interval = sim::milliseconds(5);
  CollectorBed b(cfg);
  b.feed(sim::milliseconds(3));
  ASSERT_GT(b.collector.events_queued(), 0u);
  const std::uint64_t shed_before = b.collector.events_shed();
  b.collector.set_online(false);
  EXPECT_EQ(b.collector.events_queued(), 0u);
  EXPECT_GT(b.collector.events_shed(), shed_before);
  EXPECT_EQ(b.collector.backpressure_mode(), core::BackpressureMode::kNormal);
}

// ---------------------------------------------------------------------------
// Chaos matrix: epoch invariants + determinism under faults
// ---------------------------------------------------------------------------

struct ChaosResult {
  std::uint64_t digest = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t commits = 0;
  sim::Duration max_blackhole = 0;
  int completed = 0;
};

ChaosResult run_epoch_chaos(std::uint64_t seed, bool with_telemetry) {
  sim::Simulation sim;
  obs::Telemetry telemetry;
  if (with_telemetry) sim.set_telemetry(&telemetry);
  const auto graph = net::make_fat_tree_16(
      net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.controller_config.channel.loss_prob = 0.05;
  cfg.controller_config.channel.seed = seed * 7919;
  cfg.collector_config.backpressure.queue_capacity = 32;
  cfg.collector_config.backpressure.sample_down_watermark = 8;
  cfg.collector_config.backpressure.shed_watermark = 16;
  cfg.collector_config.backpressure.sweep_watermark = 24;
  Testbed bed(sim, graph, cfg);
  te::PlanckTe te(sim, bed.controller(), te::PlanckTeConfig{});
  fault::FaultInjector inj(sim, bed, seed);

  fault::ChaosConfig chaos;
  chaos.num_faults = 6;
  chaos.include_collectors = false;  // keep the reroute plane under test
  inj.plan_random(chaos);

  constexpr int kFlows = 6;
  std::vector<tcp::FlowStats> stats(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    bed.host(i)->start_flow(net::host_ip((i + 8) % 16), 5001,
                            16 * 1024 * 1024,
                            [&stats, i](const tcp::FlowStats& s) {
                              stats[static_cast<std::size_t>(i)] = s;
                            });
  }

  // The cross-component invariants hold at every point of the run, not
  // just at the end — sample them through the fault window.
  for (sim::Time t = sim::milliseconds(5); t <= sim::milliseconds(100);
       t += sim::milliseconds(5)) {
    sim.schedule_at(t, [&inj] { inj.check_epoch_invariants(); });
  }

  sim.run_until(sim::seconds(3));
  inj.check_epoch_invariants();

  ChaosResult r;
  r.digest = sim.determinism_digest();
  r.fallbacks = bed.controller().epochs().fallbacks();
  r.commits = bed.controller().epochs().committed();
  r.max_blackhole = bed.controller().max_blackhole_observed();
  for (const tcp::FlowStats& s : stats) r.completed += s.complete ? 1 : 0;
  return r;
}

TEST(EpochChaos, SameSeedRunsAreDigestIdentical) {
  const ChaosResult a = run_epoch_chaos(11, /*with_telemetry=*/false);
  const ChaosResult b = run_epoch_chaos(11, /*with_telemetry=*/false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.completed, 6);
  EXPECT_GT(a.commits, 0u);
  EXPECT_LE(a.max_blackhole, cfg_bound());
  // Absolute digest in the log so two revisions' CI output can be diffed
  // to prove a refactor preserved the exact event stream.
  std::printf("[digest] epoch-chaos %016" PRIx64 "\n", a.digest);
}

TEST(EpochChaos, TelemetryDoesNotPerturbTheSchedule) {
  const ChaosResult bare = run_epoch_chaos(21, /*with_telemetry=*/false);
  const ChaosResult instrumented = run_epoch_chaos(21, /*with_telemetry=*/true);
  EXPECT_EQ(bare.digest, instrumented.digest);
  EXPECT_EQ(bare.fallbacks, instrumented.fallbacks);
  EXPECT_EQ(bare.commits, instrumented.commits);
}

}  // namespace
}  // namespace planck
