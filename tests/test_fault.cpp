// Failure-plane tests: link admin state and in-flight frame loss, the
// control channel's retry/backoff under loss, collector outages, heartbeat
// detection of crashed switches, controller-driven failover onto surviving
// shadow trees, and a chaos run over the fat-tree where every flow must
// still complete.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "controller/control_channel.hpp"
#include "fault/fault_injector.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "te/planck_te.hpp"
#include "workload/testbed.hpp"

namespace planck {
namespace {

using workload::Testbed;
using workload::TestbedConfig;

struct FatTree {
  explicit FatTree(TestbedConfig cfg = {})
      : graph(net::make_fat_tree_16(
            net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)})),
        bed(sim, graph, cfg) {}

  sim::Simulation sim;
  net::TopologyGraph graph;
  Testbed bed;
};

// ---------------------------------------------------------------------------
// ControlChannel retry/backoff
// ---------------------------------------------------------------------------

TEST(ControlChannel, LosslessRpcCompletesInOneRoundTrip) {
  sim::Simulation sim;
  controller::ControlChannel ch(sim, controller::ControlChannelConfig{});
  sim::Time acked = 0;
  ch.call([] { return true; }, [&](bool ok) {
    EXPECT_TRUE(ok);
    acked = sim.now();
  });
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(acked, 2 * sim::microseconds(150));
  EXPECT_EQ(ch.rpc_retries(), 0u);
  EXPECT_EQ(ch.rpc_successes(), 1u);
}

TEST(ControlChannel, RpcsConvergeUnderTenPercentLoss) {
  sim::Simulation sim;
  controller::ControlChannelConfig cfg;
  cfg.loss_prob = 0.10;
  controller::ControlChannel ch(sim, cfg);
  int ok = 0;
  int failed = 0;
  int executed = 0;
  for (int i = 0; i < 200; ++i) {
    ch.call([&executed] {
      ++executed;
      return true;
    },
            [&](bool result) { result ? ++ok : ++failed; });
  }
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(ok, 200);
  EXPECT_EQ(failed, 0);
  // At-least-once: retries re-execute the request at the receiver.
  EXPECT_GE(executed, 200);
  EXPECT_GT(ch.rpc_retries(), 0u);
  EXPECT_GT(ch.messages_lost(), 0u);
}

TEST(ControlChannel, HeavyLossMostlyConvergesWithinAttemptCeiling) {
  sim::Simulation sim;
  controller::ControlChannelConfig cfg;
  cfg.loss_prob = 0.50;
  controller::ControlChannel ch(sim, cfg);
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 100; ++i) {
    ch.call([] { return true; },
            [&](bool result) { result ? ++ok : ++failed; });
  }
  sim.run_until(sim::seconds(10));
  EXPECT_EQ(ok + failed, 100);  // every call terminates, none hang
  // Per-attempt success is 0.25; eight attempts make failure rare (~10%).
  EXPECT_GE(ok, 75);
  EXPECT_GT(ch.rpc_retries(), 100u);
}

TEST(ControlChannel, TotalLossFailsAfterExactlyMaxAttempts) {
  sim::Simulation sim;
  controller::ControlChannelConfig cfg;
  cfg.loss_prob = 1.0;
  controller::ControlChannel ch(sim, cfg);
  int executed = 0;
  bool reported = false;
  sim::Time failed_at = 0;
  ch.call([&executed] {
    ++executed;
    return true;
  },
          [&](bool ok) {
            EXPECT_FALSE(ok);
            reported = true;
            failed_at = sim.now();
          });
  sim.run_until(sim::seconds(10));
  ASSERT_TRUE(reported);
  EXPECT_EQ(executed, 0);
  EXPECT_EQ(ch.rpc_failures(), 1u);
  EXPECT_EQ(ch.rpc_retries(),
            static_cast<std::uint64_t>(cfg.rpc_max_attempts - 1));
  // Backoff doubles from 1 ms: 1+2+4+...+128 = 255 ms to give up.
  EXPECT_EQ(failed_at, sim::milliseconds(255));
}

TEST(ControlChannel, DuplicatedAcksResolveOnce) {
  sim::Simulation sim;
  controller::ControlChannelConfig cfg;
  cfg.dup_prob = 1.0;  // every message is duplicated
  controller::ControlChannel ch(sim, cfg);
  int results = 0;
  ch.call([] { return true; }, [&](bool ok) {
    EXPECT_TRUE(ok);
    ++results;
  });
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(results, 1);
  EXPECT_GT(ch.messages_duplicated(), 0u);
}

TEST(ControlChannel, DeadTargetNeverAcksAndCallFails) {
  sim::Simulation sim;
  controller::ControlChannel ch(sim, controller::ControlChannelConfig{});
  bool reported_ok = true;
  ch.call([] { return false; },  // crashed receiver: executes nothing
          [&](bool ok) { reported_ok = ok; });
  sim.run_until(sim::seconds(10));
  EXPECT_FALSE(reported_ok);
  EXPECT_EQ(ch.rpc_failures(), 1u);
}

// ---------------------------------------------------------------------------
// Link and switch failure semantics
// ---------------------------------------------------------------------------

TEST(Fault, LinkDownKillsInFlightFramesAndFlowFailsOver) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);

  std::vector<std::pair<sim::Time, bool>> transitions;
  f.bed.controller().subscribe_link_status(
      [&](int, int, bool up) { transitions.emplace_back(f.sim.now(), up); });

  tcp::FlowStats stats;
  auto* flow = f.bed.host(0)->start_flow(
      net::host_ip(4), 5001, 50 * 1024 * 1024,
      [&](const tcp::FlowStats& s) { stats = s; });

  // Cut the flow's aggregation uplink once it is running at full rate.
  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops[1];
  const sim::Time fault_at = sim::milliseconds(5);
  inj.schedule_link_outage(fault_at, sim::seconds(10), hop.switch_node,
                           hop.out_port);

  f.sim.run_until(sim::seconds(10));
  ASSERT_TRUE(stats.complete);

  // Frames that were on the wire when the cable died were lost.
  EXPECT_GT(f.bed.link_out(hop.switch_node, hop.out_port)->down_drops(), 0u);
  // The controller heard about it quickly (port-status over the channel)
  // and moved the flow to a surviving shadow tree.
  ASSERT_FALSE(transitions.empty());
  EXPECT_FALSE(transitions.front().second);
  EXPECT_LT(transitions.front().first, fault_at + sim::milliseconds(1));
  EXPECT_GE(f.bed.controller().failovers(), 1u);
  EXPECT_NE(f.bed.controller().tree_of(flow->key()), 0);
  EXPECT_FALSE(
      f.bed.controller().link_up(hop.switch_node, hop.out_port));
}

TEST(Fault, RestoredLinkIsBelievedUpAgain) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops[1];
  inj.schedule_link_outage(sim::milliseconds(1), sim::milliseconds(5),
                          hop.switch_node, hop.out_port);
  f.sim.run_until(sim::milliseconds(3));
  EXPECT_FALSE(f.bed.controller().link_up(hop.switch_node, hop.out_port));
  EXPECT_TRUE(inj.link_down(hop.switch_node, hop.out_port));
  f.sim.run_until(sim::milliseconds(10));
  EXPECT_TRUE(f.bed.controller().link_up(hop.switch_node, hop.out_port));
  EXPECT_FALSE(inj.link_down(hop.switch_node, hop.out_port));
  // Down and up transitions both recorded.
  ASSERT_EQ(inj.history().size(), 2u);
  EXPECT_EQ(inj.history()[0].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(inj.history()[1].kind, fault::FaultKind::kLinkUp);
}

TEST(Fault, OverlappingOutagesReferenceCount) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops[1];
  inj.fail_link(hop.switch_node, hop.out_port);
  inj.fail_link(hop.switch_node, hop.out_port);  // second outage, same cable
  EXPECT_TRUE(inj.link_down(hop.switch_node, hop.out_port));
  inj.restore_link(hop.switch_node, hop.out_port);
  EXPECT_TRUE(inj.link_down(hop.switch_node, hop.out_port));  // still held
  inj.restore_link(hop.switch_node, hop.out_port);
  EXPECT_FALSE(inj.link_down(hop.switch_node, hop.out_port));
  // Only one real down/up pair.
  EXPECT_EQ(inj.history().size(), 2u);
}

TEST(Fault, HeartbeatDetectsCrashedSwitchAndRecovery) {
  TestbedConfig cfg;
  cfg.controller_config.heartbeat_interval = sim::milliseconds(2);
  cfg.controller_config.channel.rpc_timeout = sim::microseconds(500);
  cfg.controller_config.channel.rpc_max_attempts = 4;
  FatTree f(cfg);
  fault::FaultInjector inj(f.sim, f.bed, 1);

  std::vector<std::pair<int, bool>> status;
  f.bed.controller().subscribe_switch_status(
      [&](int node, bool alive) { status.emplace_back(node, alive); });

  const int core_node =
      f.graph.switch_node(f.graph.shape().core_switch_index(0));
  inj.schedule_switch_outage(sim::milliseconds(1), sim::milliseconds(19),
                             core_node);

  // Probe RPCs to the wedged switch exhaust their budget (~4 ms), after
  // which the controller declares it dead.
  f.sim.run_until(sim::milliseconds(15));
  EXPECT_EQ(f.bed.controller().dead_switches().count(core_node), 1u);
  EXPECT_FALSE(f.bed.controller().switch_alive(core_node));
  ASSERT_FALSE(status.empty());
  EXPECT_EQ(status.front(), (std::pair<int, bool>{core_node, false}));

  // After restore the next probe round resurrects it.
  f.sim.run_until(sim::milliseconds(30));
  EXPECT_TRUE(f.bed.controller().switch_alive(core_node));
  EXPECT_EQ(status.back(), (std::pair<int, bool>{core_node, true}));
}

TEST(Fault, CrashedSwitchForwardsNothing) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  const net::TopologyShape& shape = f.graph.shape();
  const int edge_node = f.graph.switch_node(
      shape.edge_switch_index(shape.pod_of_host(0), shape.edge_of_host(0)));

  tcp::FlowStats stats;
  f.bed.host(0)->start_flow(net::host_ip(4), 5001, 4 * 1024 * 1024,
                            [&](const tcp::FlowStats& s) { stats = s; });
  inj.schedule_switch_outage(sim::milliseconds(1), sim::milliseconds(10),
                             edge_node);
  f.sim.run_until(sim::milliseconds(5));
  auto* sw = f.bed.switch_by_node(edge_node);
  EXPECT_FALSE(sw->online());
  EXPECT_GT(sw->fault_drops(), 0u);  // blackholed while wedged
  // TCP rides out the blackout on retransmission timers.
  f.sim.run_until(sim::seconds(10));
  EXPECT_TRUE(stats.complete);
  EXPECT_GT(stats.retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Collector outages
// ---------------------------------------------------------------------------

TEST(Fault, CollectorOutageMarksEstimatesStaleNotFrozen) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);

  tcp::FlowStats stats;
  f.bed.host(0)->start_flow(net::host_ip(4), 5001, 200 * 1024 * 1024,
                            [&](const tcp::FlowStats& s) { stats = s; });
  f.sim.run_until(sim::milliseconds(10));

  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops.front();
  auto* collector = f.bed.collector_by_node(hop.switch_node);
  ASSERT_NE(collector, nullptr);
  ASSERT_GT(collector->link_utilization_bps(hop.out_port), 1e9);
  ASSERT_FALSE(collector->data_stale());

  inj.crash_collector(hop.switch_node);
  // A dead process serves nothing — not yesterday's numbers.
  EXPECT_FALSE(collector->online());
  EXPECT_TRUE(collector->data_stale());
  EXPECT_EQ(collector->link_utilization_bps(hop.out_port), 0.0);
  EXPECT_TRUE(collector->flows_on_link(hop.out_port).empty());
  f.sim.run_until(sim::milliseconds(20));
  EXPECT_GT(collector->samples_dropped_offline(), 0u);

  inj.restore_collector(hop.switch_node);
  EXPECT_EQ(collector->outages(), 1u);
  f.sim.run_until(sim::milliseconds(40));
  // Fresh samples rebuild the estimates.
  EXPECT_FALSE(collector->data_stale());
  EXPECT_GT(collector->link_utilization_bps(hop.out_port), 1e9);
}

TEST(Fault, QuietMonitorStreamReadsStaleEvenWhenOnline) {
  FatTree f;
  fault::FaultInjector inj(f.sim, f.bed, 1);
  tcp::FlowStats stats;
  f.bed.host(0)->start_flow(net::host_ip(4), 5001, 200 * 1024 * 1024,
                            [&](const tcp::FlowStats& s) { stats = s; });
  f.sim.run_until(sim::milliseconds(10));
  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops.front();
  auto* collector = f.bed.collector_by_node(hop.switch_node);
  ASSERT_FALSE(collector->data_stale());
  // Cut the monitor cable: the collector stays up but goes deaf.
  const int monitor_port = f.graph.num_ports(hop.switch_node);
  ASSERT_NE(f.bed.link_out(hop.switch_node, monitor_port), nullptr);
  f.bed.link_out(hop.switch_node, monitor_port)->set_admin_up(false);
  f.sim.run_until(sim::milliseconds(30));
  EXPECT_TRUE(collector->online());
  EXPECT_TRUE(collector->data_stale());
}

// ---------------------------------------------------------------------------
// Chaos: random fault schedule, every flow must still complete
// ---------------------------------------------------------------------------

struct LinkTransition {
  sim::Time at;
  int node;
  int port;
  bool up;
};

bool switch_offline_at(const std::vector<fault::FaultRecord>& history,
                       int node, sim::Time t) {
  int depth = 0;
  for (const fault::FaultRecord& r : history) {
    if (r.node != node) continue;
    if (r.at > t) break;
    if (r.kind == fault::FaultKind::kSwitchCrash) ++depth;
    if (r.kind == fault::FaultKind::kSwitchRestore) --depth;
  }
  return depth > 0;
}

TEST(Chaos, AllFlowsCompleteUnderRandomFaults) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 1234ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::Simulation sim;
    const auto graph = net::make_fat_tree_16(
        net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
    Testbed bed(sim, graph, TestbedConfig{});
    te::PlanckTe te(sim, bed.controller(), te::PlanckTeConfig{});
    fault::FaultInjector inj(sim, bed, seed);

    std::vector<LinkTransition> transitions;
    bed.controller().subscribe_link_status([&](int node, int port, bool up) {
      transitions.push_back(LinkTransition{sim.now(), node, port, up});
    });

    fault::ChaosConfig chaos;
    chaos.num_faults = 6;
    chaos.start = sim::milliseconds(5);
    chaos.spread = sim::milliseconds(40);
    chaos.min_down = sim::milliseconds(2);
    chaos.max_down = sim::milliseconds(15);
    ASSERT_GT(inj.plan_random(chaos), 0);

    // 40 MiB per flow: ~36 ms at line rate, so the fault window (5-45 ms)
    // lands on live traffic.
    constexpr int kFlows = 8;
    std::vector<tcp::FlowStats> stats(kFlows);
    for (int i = 0; i < kFlows; ++i) {
      bed.host(i)->start_flow(net::host_ip((i + 8) % 16), 5001,
                              40 * 1024 * 1024,
                              [&stats, i](const tcp::FlowStats& s) {
                                stats[static_cast<std::size_t>(i)] = s;
                              });
    }

    sim.run_until(sim::seconds(5));  // bounded horizon: a hang fails below

    for (int i = 0; i < kFlows; ++i) {
      EXPECT_TRUE(stats[static_cast<std::size_t>(i)].complete)
          << "flow " << i << " never completed";
    }
    EXPECT_FALSE(inj.history().empty());

    // Bounded detection: every cable cut whose transmitting switch was
    // healthy must surface as a controller link-down event within 1 ms
    // (one channel traversal plus slack).
    for (const fault::FaultRecord& r : inj.history()) {
      if (r.kind != fault::FaultKind::kLinkDown) continue;
      if (switch_offline_at(inj.history(), r.node, r.at)) continue;
      bool detected = false;
      for (const LinkTransition& t : transitions) {
        if (t.node == r.node && t.port == r.port && !t.up &&
            t.at >= r.at && t.at <= r.at + sim::milliseconds(1)) {
          detected = true;
          break;
        }
      }
      EXPECT_TRUE(detected)
          << "link (" << r.node << "," << r.port << ") cut at " << r.at
          << " never detected";
    }
  }
}

}  // namespace
}  // namespace planck
