// Tests for the pcap writer (vantage-point monitoring, §6.1): exact file
// format bytes, frame rendering for TCP/UDP/ARP, snaplen behaviour, and
// file output.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pcap/pcap_writer.hpp"

namespace planck::pcap {
namespace {

std::uint32_t read_u32le(const std::vector<std::uint8_t>& b,
                         std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

std::uint16_t read_u16be(const std::vector<std::uint8_t>& b,
                         std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

net::Packet tcp_packet() {
  net::Packet p;
  p.src_mac = net::host_mac(0);
  p.dst_mac = net::host_mac(1);
  p.src_ip = net::host_ip(0);
  p.dst_ip = net::host_ip(1);
  p.src_port = 10000;
  p.dst_port = 5001;
  p.proto = net::Protocol::kTcp;
  p.flags = net::kAck;
  p.seq = 0x01020304;
  p.payload = 100;
  return p;
}

TEST(Pcap, GlobalHeader) {
  PcapWriter w;
  w.add(0, tcp_packet());
  const auto& b = w.bytes();
  ASSERT_GE(b.size(), 24u);
  EXPECT_EQ(read_u32le(b, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(b[4], 2u);                        // version major (LE)
  EXPECT_EQ(b[6], 4u);                        // version minor
  EXPECT_EQ(read_u32le(b, 20), 1u);           // LINKTYPE_ETHERNET
}

TEST(Pcap, RecordHeaderTimestampsMicroseconds) {
  PcapWriter w;
  w.add(sim::seconds(3) + sim::microseconds(250), tcp_packet());
  const auto& b = w.bytes();
  EXPECT_EQ(read_u32le(b, 24), 3u);    // ts_sec
  EXPECT_EQ(read_u32le(b, 28), 250u);  // ts_usec
}

TEST(Pcap, RecordLengths) {
  PcapWriter w;
  net::Packet p = tcp_packet();
  w.add(0, p);
  const auto& b = w.bytes();
  const std::uint32_t incl = read_u32le(b, 32);
  const std::uint32_t orig = read_u32le(b, 36);
  EXPECT_EQ(incl, orig);
  // Ethernet 14 + IP 20 + TCP 20 + 100 payload = 154.
  EXPECT_EQ(orig, 154u);
  EXPECT_EQ(b.size(), 24u + 16u + 154u);
}

TEST(Pcap, SnaplenTruncates) {
  PcapWriter w(64);
  w.add(0, tcp_packet());
  const auto& b = w.bytes();
  EXPECT_EQ(read_u32le(b, 32), 64u);   // incl_len capped
  EXPECT_EQ(read_u32le(b, 36), 154u);  // orig_len intact
  EXPECT_EQ(b.size(), 24u + 16u + 64u);
}

TEST(Pcap, EthernetHeaderFields) {
  const auto frame = PcapWriter::render_frame(tcp_packet());
  // dst MAC 02:00:00:00:00:01.
  EXPECT_EQ(frame[0], 0x02);
  EXPECT_EQ(frame[5], 0x01);
  // src MAC 02:00:00:00:00:00.
  EXPECT_EQ(frame[6], 0x02);
  EXPECT_EQ(frame[11], 0x00);
  // EtherType IPv4.
  EXPECT_EQ(read_u16be(frame, 12), 0x0800);
}

TEST(Pcap, Ipv4AndTcpFields) {
  const auto frame = PcapWriter::render_frame(tcp_packet());
  EXPECT_EQ(frame[14], 0x45);                   // version+IHL
  EXPECT_EQ(read_u16be(frame, 16), 140u);       // total length 20+20+100
  EXPECT_EQ(frame[23], 6u);                     // protocol TCP
  EXPECT_EQ(read_u16be(frame, 34), 10000u);     // src port
  EXPECT_EQ(read_u16be(frame, 36), 5001u);      // dst port
  // Sequence number (big endian at offset 38).
  EXPECT_EQ(frame[38], 0x01);
  EXPECT_EQ(frame[41], 0x04);
  EXPECT_EQ(frame[47], 0x10);  // flags: ACK
}

TEST(Pcap, TcpFlagBits) {
  net::Packet p = tcp_packet();
  p.flags = net::kSyn | net::kAck | net::kFin;
  const auto frame = PcapWriter::render_frame(p);
  EXPECT_EQ(frame[47], 0x02 | 0x10 | 0x01);
}

TEST(Pcap, UdpFrame) {
  net::Packet p = tcp_packet();
  p.proto = net::Protocol::kUdp;
  p.payload = 50;
  const auto frame = PcapWriter::render_frame(p);
  EXPECT_EQ(frame[23], 17u);               // protocol UDP
  EXPECT_EQ(read_u16be(frame, 38), 58u);   // UDP length 8+50
  EXPECT_EQ(frame.size(), 14u + 20u + 8u + 50u);
}

TEST(Pcap, ArpFrame) {
  net::Packet p;
  p.proto = net::Protocol::kArp;
  p.arp_op = net::ArpOp::kRequest;
  p.src_ip = net::host_ip(4);
  p.dst_ip = net::host_ip(0);
  p.arp_mac = net::host_mac(4, 2);
  p.dst_mac = net::host_mac(0);
  p.src_mac = net::host_mac(4, 2);
  const auto frame = PcapWriter::render_frame(p);
  EXPECT_EQ(read_u16be(frame, 12), 0x0806);  // EtherType ARP
  EXPECT_EQ(read_u16be(frame, 20), 1u);      // opcode request
  EXPECT_GE(frame.size(), 60u);              // min Ethernet frame
}

TEST(Pcap, MinimumFramePadding) {
  net::Packet p = tcp_packet();
  p.payload = 0;  // 54-byte frame -> padded to 60
  const auto frame = PcapWriter::render_frame(p);
  EXPECT_EQ(frame.size(), 60u);
}

TEST(Pcap, CountsRecords) {
  PcapWriter w;
  EXPECT_EQ(w.count(), 0u);
  w.add(0, tcp_packet());
  w.add(1000, tcp_packet());
  EXPECT_EQ(w.count(), 2u);
}

TEST(Pcap, WritesFile) {
  PcapWriter w;
  w.add(0, tcp_packet());
  const std::string path = ::testing::TempDir() + "/planck_test.pcap";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(data.size(), w.bytes().size());
  std::remove(path.c_str());
}

TEST(Pcap, EmptyCaptureStillValidFile) {
  PcapWriter w;
  const std::string path = ::testing::TempDir() + "/planck_empty.pcap";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path, std::ios::binary);
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(data.size(), 24u);  // just the global header
  std::remove(path.c_str());
}

}  // namespace
}  // namespace planck::pcap
