// Tests for the traffic-engineering applications: TeState bookkeeping and
// bottleneck math (DevoFlow Algorithm 1), PlanckTe's greedy rerouting
// (Algorithm 1 of the paper), and PollTe's demand estimation + global
// first fit.

#include <gtest/gtest.h>

#include "controller/controller.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "te/planck_te.hpp"
#include "te/poll_te.hpp"
#include "workload/testbed.hpp"

namespace planck::te {
namespace {

struct Fixture {
  Fixture()
      : graph(net::make_fat_tree_16(
            net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)})),
        routing(graph) {}

  KnownFlow flow(int s, int d, int tree, double rate) {
    KnownFlow f;
    f.key = net::FlowKey{net::host_ip(s), net::host_ip(d),
                         static_cast<std::uint16_t>(10000 + s), 5001,
                         net::Protocol::kTcp};
    f.src_host = s;
    f.dst_host = d;
    f.tree = tree;
    f.rate_bps = sim::BitsPerSecF{rate};
    return f;
  }

  net::TopologyGraph graph;
  controller::Routing routing;
};

// ---------------------------------------------------------------------------
// TeState
// ---------------------------------------------------------------------------

TEST(TeState, LinkLoadsFollowPaths) {
  Fixture f;
  TeState state(f.routing);
  const KnownFlow kf = f.flow(0, 4, 0, 3e9);
  state.upsert(kf.key) = kf;
  const auto loads = state.link_loads();
  const net::RoutePath& p = f.routing.path(0, 4, 0);
  EXPECT_EQ(loads.size(), p.hops.size());
  for (const net::PathHop& hop : p.hops) {
    const auto it = loads.find(net::DirectedLink{hop.switch_node,
                                                 hop.out_port});
    ASSERT_NE(it, loads.end());
    EXPECT_DOUBLE_EQ(it->second.count(), 3e9);
  }
}

TEST(TeState, ExcludeRemovesFlow) {
  Fixture f;
  TeState state(f.routing);
  const KnownFlow kf = f.flow(0, 4, 0, 3e9);
  state.upsert(kf.key) = kf;
  EXPECT_TRUE(state.link_loads(&kf.key).empty());
}

TEST(TeState, OverlappingFlowsSum) {
  Fixture f;
  TeState state(f.routing);
  // Two flows from the same edge pair on the same tree share links.
  const KnownFlow a = f.flow(0, 4, 0, 3e9);
  const KnownFlow b = f.flow(1, 5, 0, 2e9);
  state.upsert(a.key) = a;
  state.upsert(b.key) = b;
  const auto loads = state.link_loads();
  // The shared edge(0,0) uplink carries both.
  const net::PathHop& up = f.routing.path(0, 4, 0).hops.front();
  const net::PathHop& up_b = f.routing.path(1, 5, 0).hops.front();
  ASSERT_EQ(up.switch_node, up_b.switch_node);
  if (up.out_port == up_b.out_port) {
    EXPECT_DOUBLE_EQ(
        loads.at(net::DirectedLink{up.switch_node, up.out_port}).count(),
        5e9);
  }
}

TEST(TeState, BottleneckIsMinResidual) {
  Fixture f;
  TeState state(f.routing);
  const KnownFlow other = f.flow(1, 5, 0, 6e9);
  state.upsert(other.key) = other;
  const auto loads = state.link_loads();
  // Path 0->4 tree 0 shares the edge uplink with 1->5 tree 0 (same base
  // cores for 4 and 5): residual 4e9 there, 10e9 elsewhere.
  const double b0 =
      state.path_bottleneck(f.routing.path(0, 4, 0), loads).count();
  EXPECT_NEAR(b0, 4e9, 1.0);
  // A tree in the other agg group is free.
  const double b2 =
      state.path_bottleneck(f.routing.path(0, 4, 2), loads).count();
  EXPECT_NEAR(b2, 10e9, 1.0);
}

TEST(TeState, RemoveOldFlows) {
  Fixture f;
  TeState state(f.routing);
  KnownFlow a = f.flow(0, 4, 0, 1e9);
  a.last_heard = 100;
  KnownFlow b = f.flow(1, 5, 0, 1e9);
  b.last_heard = 500;
  state.upsert(a.key) = a;
  state.upsert(b.key) = b;
  state.remove_old_flows(300);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(state.flows().count(b.key), 1u);
}

// ---------------------------------------------------------------------------
// PlanckTe greedy routing (paper Algorithm 1) on synthetic events
// ---------------------------------------------------------------------------

struct TeFixture {
  TeFixture()
      : graph(net::make_fat_tree_16(
            net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)})),
        bed(sim, graph, workload::TestbedConfig{}),
        te(sim, bed.controller(), PlanckTeConfig{}) {}

  core::CongestionEvent event_for(std::vector<core::FlowRate> flows) {
    // Attribute the event to the shared first-hop link of flow 0.
    const auto& routing = bed.controller().routing();
    const net::PathHop hop = routing.path(0, 4, 0).hops.front();
    core::CongestionEvent e;
    e.switch_node = hop.switch_node;
    e.out_port = hop.out_port;
    e.capacity_bps = 10'000'000'000;
    e.detected_at = sim.now();
    e.utilization_bps = 0;
    for (const auto& fr : flows) e.utilization_bps += fr.rate_bps;
    e.flows = std::move(flows);
    return e;
  }

  static core::FlowRate rate(int s, int d, double bps, int tree = 0) {
    core::FlowRate fr;
    fr.key = net::FlowKey{net::host_ip(s), net::host_ip(d),
                          static_cast<std::uint16_t>(10000 + s), 5001,
                          net::Protocol::kTcp};
    fr.src_mac = net::host_mac(s);
    fr.dst_mac = net::host_mac(d, tree);
    fr.rate_bps = bps;
    return fr;
  }

  sim::Simulation sim;
  net::TopologyGraph graph;
  workload::Testbed bed;
  PlanckTe te;
};

TEST(PlanckTe, MovesExactlyOneOfTwoCollidingFlows) {
  TeFixture f;
  f.te.process_congestion(
      f.event_for({TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)}));
  EXPECT_EQ(f.te.reroutes(), 1u);
  // One of the two flows is now on a non-base tree.
  const int t0 = f.bed.controller().tree_of(TeFixture::rate(0, 4, 0).key);
  const int t1 = f.bed.controller().tree_of(TeFixture::rate(1, 5, 0).key);
  EXPECT_EQ((t0 == 0) + (t1 == 0), 1);
  // And onto the disjoint agg group (relative tree 2 or 3).
  EXPECT_GE(t0 + t1, 2);
}

TEST(PlanckTe, SingleFullRateFlowIsLeftAlone) {
  TeFixture f;
  f.te.process_congestion(f.event_for({TeFixture::rate(0, 4, 9.4e9)}));
  EXPECT_EQ(f.te.reroutes(), 0u);
}

TEST(PlanckTe, IgnoresMiceBelowThreshold) {
  TeFixture f;
  f.te.process_congestion(f.event_for(
      {TeFixture::rate(0, 4, 9.3e9), TeFixture::rate(1, 5, 10e6)}));
  EXPECT_EQ(f.te.reroutes(), 0u);
}

TEST(PlanckTe, CooldownPreventsDoubleMove) {
  TeFixture f;
  const auto flows = std::vector<core::FlowRate>{
      TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)};
  f.te.process_congestion(f.event_for(flows));
  EXPECT_EQ(f.te.reroutes(), 1u);
  // The same (stale) notification arrives again before the reroute took
  // effect: nothing further must move.
  f.te.process_congestion(f.event_for(flows));
  EXPECT_EQ(f.te.reroutes(), 1u);
}

TEST(PlanckTe, ReroutesAgainAfterCooldown) {
  TeFixture f;
  f.te.process_congestion(
      f.event_for({TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)}));
  EXPECT_EQ(f.te.reroutes(), 1u);
  f.sim.run_until(sim::milliseconds(10));
  // New congestion appears involving the already-moved flow on its new
  // tree plus a third flow; movement is allowed again.
  f.te.process_congestion(f.event_for(
      {TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)}));
  EXPECT_GE(f.te.events_processed(), 2u);
}

TEST(PlanckTe, AccountsKnownFlowsOnAlternatePaths) {
  TeFixture f;
  // First: flows A(0->4) and B(1->5) collide; B moves to the other agg
  // group (tree 2 or 3).
  f.te.process_congestion(f.event_for(
      {TeFixture::rate(1, 5, 4.7e9), TeFixture::rate(0, 4, 4.6e9)}));
  ASSERT_EQ(f.te.reroutes(), 1u);
  f.sim.run_until(sim::milliseconds(10));
  // Now flows C(0->4 with a different port) and A collide again. C should
  // NOT be moved onto B's tree if that would be worse than a free one —
  // at minimum, the state knows B exists.
  EXPECT_GE(f.te.state().size(), 2u);
}

TEST(PlanckTe, CooldownSuppressesBackToBackRerouteAttempts) {
  TeFixture f;
  const auto flows = std::vector<core::FlowRate>{
      TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)};
  f.te.process_congestion(f.event_for(flows));
  EXPECT_EQ(f.te.reroutes(), 1u);
  // A burst of stale notifications inside the cooldown window (reroute
  // still propagating) must not compound the move.
  for (int i = 0; i < 5; ++i) {
    f.sim.run_until(f.sim.now() + sim::microseconds(400));
    f.te.process_congestion(f.event_for(flows));
  }
  EXPECT_EQ(f.te.reroutes(), 1u);
}

TEST(PlanckTe, FlowTimeoutExpiresEntriesMidCongestion) {
  TeFixture f;
  // Two flows known at t=0.
  f.te.process_congestion(f.event_for(
      {TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)}));
  EXPECT_EQ(f.te.state().size(), 2u);
  // Past the 3 ms flow_timeout both entries are stale; the next event
  // (reporting only a new flow) expunges them so their phantom load does
  // not distort bottleneck math.
  f.sim.run_until(sim::milliseconds(10));
  f.te.process_congestion(f.event_for({TeFixture::rate(2, 6, 9.4e9)}));
  EXPECT_EQ(f.te.state().size(), 1u);
  EXPECT_EQ(f.te.state().flows().count(TeFixture::rate(2, 6, 0).key), 1u);
}

TEST(PlanckTe, NotificationForAlreadyRemovedFlowIsHarmless) {
  TeFixture f;
  const auto flows = std::vector<core::FlowRate>{
      TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)};
  f.te.process_congestion(f.event_for(flows));
  f.sim.run_until(sim::milliseconds(10));
  // Entries have timed out. A late (stale) notification naming the same
  // flows arrives: it must be treated as fresh information, not crash on
  // the missing state.
  f.te.process_congestion(f.event_for(flows));
  EXPECT_EQ(f.te.state().size(), 2u);
  EXPECT_GE(f.te.events_processed(), 2u);
}

TEST(PlanckTe, IgnoresFlowsWithUnknownHosts) {
  TeFixture f;
  core::FlowRate bogus;
  bogus.key = net::FlowKey{0xdeadbeef, 0xcafef00d, 1, 2,
                           net::Protocol::kTcp};  // not host IPs
  bogus.rate_bps = 9e9;
  auto e = f.event_for({bogus});
  f.te.process_congestion(e);
  EXPECT_EQ(f.te.state().size(), 0u);
  EXPECT_EQ(f.te.reroutes(), 0u);
}

TEST(PlanckTe, FailsOverFlowsOffDeadLinks) {
  TeFixture f;
  // TE learns of a big flow 0->4 on the base tree.
  f.te.process_congestion(f.event_for({TeFixture::rate(0, 4, 9.4e9)}));
  ASSERT_EQ(f.te.state().size(), 1u);
  ASSERT_EQ(f.te.reroutes(), 0u);  // alone at line rate: left in place
  // Its aggregation uplink dies. The cooldown must NOT protect it — the
  // path is gone — and the replacement tree must avoid the dead link.
  const net::PathHop hop =
      f.bed.controller().routing().path(0, 4, 0).hops[1];
  f.bed.set_link_state(hop.switch_node, hop.out_port, false);
  f.sim.run_until(sim::milliseconds(2));  // port-status propagates
  EXPECT_GE(f.te.failovers() + f.bed.controller().failovers(), 1u);
  const int tree = f.bed.controller().tree_of(TeFixture::rate(0, 4, 0).key);
  EXPECT_NE(tree, 0);
  EXPECT_TRUE(f.bed.controller().path_alive(
      f.bed.controller().routing().path(0, 4, tree)));
}

TEST(PlanckTe, RefusesRerouteOntoDeadTree) {
  TeFixture f;
  // Kill every shadow tree's agg uplink for 0->4, leaving only tree 0.
  const auto& routing = f.bed.controller().routing();
  for (int tree = 1; tree < routing.num_trees(); ++tree) {
    const net::PathHop hop = routing.path(0, 4, tree).hops[1];
    f.bed.set_link_state(hop.switch_node, hop.out_port, false);
  }
  f.sim.run_until(sim::milliseconds(2));
  // Two colliding elephants would normally trigger a move; with every
  // alternate dead, the flows stay on the (congested but live) base tree.
  f.te.process_congestion(f.event_for(
      {TeFixture::rate(0, 4, 4.7e9), TeFixture::rate(1, 5, 4.7e9)}));
  EXPECT_EQ(f.bed.controller().tree_of(TeFixture::rate(0, 4, 0).key), 0);
}

// ---------------------------------------------------------------------------
// PollTe demand estimation (Hedera)
// ---------------------------------------------------------------------------

KnownFlow demand_flow(int s, int d) {
  KnownFlow f;
  f.key = net::FlowKey{net::host_ip(s), net::host_ip(d),
                       static_cast<std::uint16_t>(10000 + s), 5001,
                       net::Protocol::kTcp};
  f.src_host = s;
  f.dst_host = d;
  return f;
}

TEST(DemandEstimation, BijectionGetsFullRate) {
  std::vector<KnownFlow> flows;
  for (int i = 0; i < 4; ++i) flows.push_back(demand_flow(i, (i + 1) % 4));
  const auto d = PollTe::estimate_demands(flows, 4);
  for (double v : d) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(DemandEstimation, TwoSendersOneReceiverSplit) {
  std::vector<KnownFlow> flows{demand_flow(0, 2), demand_flow(1, 2)};
  const auto d = PollTe::estimate_demands(flows, 3);
  EXPECT_NEAR(d[0], 0.5, 1e-9);
  EXPECT_NEAR(d[1], 0.5, 1e-9);
}

TEST(DemandEstimation, OneSenderTwoReceiversSplit) {
  std::vector<KnownFlow> flows{demand_flow(0, 1), demand_flow(0, 2)};
  const auto d = PollTe::estimate_demands(flows, 3);
  EXPECT_NEAR(d[0], 0.5, 1e-9);
  EXPECT_NEAR(d[1], 0.5, 1e-9);
}

TEST(DemandEstimation, MixedSourceSharesReallocated) {
  // Hosts 0 and 1 both send to 3; host 0 also sends to 2. Max-min fair:
  // the receiver-limited flows to 3 converge at 0.5 each; host 0's flow
  // to 2 then gets its residual 0.5.
  std::vector<KnownFlow> flows{demand_flow(0, 3), demand_flow(1, 3),
                               demand_flow(0, 2)};
  const auto d = PollTe::estimate_demands(flows, 4);
  EXPECT_NEAR(d[0], 0.5, 1e-6);
  EXPECT_NEAR(d[1], 0.5, 1e-6);
  EXPECT_NEAR(d[2], 0.5, 1e-6);
}

TEST(DemandEstimation, ManyToOneEqualShares) {
  std::vector<KnownFlow> flows;
  for (int s = 0; s < 5; ++s) flows.push_back(demand_flow(s, 7));
  const auto d = PollTe::estimate_demands(flows, 8);
  for (double v : d) EXPECT_NEAR(v, 0.2, 1e-9);
}

TEST(DemandEstimation, EmptyInput) {
  const auto d = PollTe::estimate_demands({}, 4);
  EXPECT_TRUE(d.empty());
}

// ---------------------------------------------------------------------------
// PollTe end to end
// ---------------------------------------------------------------------------

TEST(PollTe, SeparatesCollidingFlowsAfterPoll) {
  sim::Simulation sim;
  const auto graph = net::make_fat_tree_16(
      net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
  workload::TestbedConfig cfg;
  cfg.enable_planck = false;
  cfg.switch_config.flow_accounting = true;
  workload::Testbed bed(sim, graph, cfg);
  PollTeConfig pcfg;
  pcfg.interval = sim::milliseconds(100);
  pcfg.poll_latency = sim::milliseconds(25);
  PollTe poll(sim, bed.controller(), bed.switch_nodes(), pcfg);
  poll.start();

  tcp::FlowStats s1;
  tcp::FlowStats s2;
  auto* f1 = bed.host(0)->start_flow(net::host_ip(4), 5001,
                                     400 * 1024 * 1024,
                                     [&](const tcp::FlowStats& s) { s1 = s; });
  auto* f2 = bed.host(1)->start_flow(net::host_ip(5), 5001,
                                     400 * 1024 * 1024,
                                     [&](const tcp::FlowStats& s) { s2 = s; });
  sim.run_until(sim::seconds(10));
  ASSERT_TRUE(s1.complete && s2.complete);
  EXPECT_GE(poll.reroutes(), 1u);
  // After the first poll cycle the two flows sit on different trees.
  const int t1 = bed.controller().tree_of(f1->key());
  const int t2 = bed.controller().tree_of(f2->key());
  EXPECT_NE(t1 == t2, true) << "t1=" << t1 << " t2=" << t2;
  // Aggregate finishes faster than a fully-shared link would allow:
  // 400 MiB at a fair 4.7G share each would take ~730 ms; after the
  // ~125 ms poll+placement the flows run at line rate.
  EXPECT_LT(s1.completed_at, sim::milliseconds(700));
  EXPECT_LT(s2.completed_at, sim::milliseconds(700));
  EXPECT_EQ(poll.polls(), static_cast<std::uint64_t>(poll.polls()));
}

TEST(PollTe, NoRerouteWithoutCongestion) {
  sim::Simulation sim;
  const auto graph = net::make_fat_tree_16(
      net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
  workload::TestbedConfig cfg;
  cfg.enable_planck = false;
  cfg.switch_config.flow_accounting = true;
  workload::Testbed bed(sim, graph, cfg);
  PollTeConfig pcfg;
  pcfg.interval = sim::milliseconds(100);
  PollTe poll(sim, bed.controller(), bed.switch_nodes(), pcfg);
  poll.start();
  tcp::FlowStats s1;
  bed.host(0)->start_flow(net::host_ip(4), 5001, 200 * 1024 * 1024,
                          [&](const tcp::FlowStats& s) { s1 = s; });
  sim.run_until(sim::seconds(2));
  ASSERT_TRUE(s1.complete);
  EXPECT_EQ(poll.reroutes(), 0u);
  EXPECT_GE(poll.polls(), 2u);
}

}  // namespace
}  // namespace planck::te
