// Tests for Planck's rate estimation (§3.2.2): exact recovery from full
// and subsampled streams, burst clustering, the 700 us force-out, the
// out-of-order rule, and contrast with the rolling-average estimator.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rate_estimator.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace planck::core {
namespace {

using sim::microseconds;
using sim::Time;

/// Feeds a perfectly paced stream at `rate_bps` for `duration`, returning
/// the estimator's final estimate.
double feed_cbr(BurstRateEstimator& est, double rate_bps,
                sim::Duration duration, std::uint32_t payload = 1460) {
  const double interval_ns = payload * 8.0 / rate_bps * 1e9;
  std::uint64_t seq = 0;
  for (double t = 0; t < static_cast<double>(duration); t += interval_ns) {
    est.add_sample(static_cast<Time>(t), seq, payload);
    seq += payload;
  }
  return est.has_estimate() ? est.rate_bps() : -1.0;
}

TEST(BurstEstimator, RecoversCbrRateExactly) {
  BurstRateEstimator est;
  const double got = feed_cbr(est, 5e9, sim::milliseconds(5));
  EXPECT_NEAR(got, 5e9, 5e7);  // within 1%
}

TEST(BurstEstimator, NoEstimateFromSinglePacket) {
  BurstRateEstimator est;
  est.add_sample(0, 0, 1460);
  EXPECT_FALSE(est.has_estimate());
}

TEST(BurstEstimator, NoEstimateWithinOneShortBurst) {
  BurstRateEstimator est;
  // 10 back-to-back packets at 10G: 1.23 us apart, all within 700 us.
  for (int i = 0; i < 10; ++i) {
    est.add_sample(i * 1231, static_cast<std::uint64_t>(i) * 1460, 1460);
  }
  EXPECT_FALSE(est.has_estimate());
}

TEST(BurstEstimator, GapClosesBurstAndAveragesOverGap) {
  // Slow-start shape: a line-rate burst then an RTT of silence. The
  // estimate must be the byte count over burst + gap (the per-RTT average,
  // Figure 10(b)) — NOT the within-burst line rate.
  BurstRateEstimator est;
  const std::int64_t burst_bytes = 10 * 1460;
  for (int i = 0; i < 10; ++i) {
    est.add_sample(i * 1231, static_cast<std::uint64_t>(i) * 1460, 1460);
  }
  // Next burst begins one 250 us RTT after the first began.
  const Time t2 = microseconds(250);
  est.add_sample(t2, static_cast<std::uint64_t>(burst_bytes), 1460);
  ASSERT_TRUE(est.has_estimate());
  const double expected = static_cast<double>(burst_bytes) * 8.0 /
                          sim::to_seconds(t2);
  EXPECT_NEAR(est.rate_bps(), expected, expected * 0.01);
  EXPECT_LT(est.rate_bps(), 1e9);  // far from the 9.5G within-burst rate
}

TEST(BurstEstimator, SteadyStateForcedEstimatesEveryMaxBurst) {
  BurstRateEstimator est;
  // Continuous 9.49 Gbps stream for 10 ms: expect ~estimates every 700 us.
  feed_cbr(est, 9.49e9, sim::milliseconds(10));
  EXPECT_NEAR(static_cast<double>(est.estimates_produced()),
              10000.0 / 700.0, 3.0);
}

TEST(BurstEstimator, EstimateTimestampAdvances) {
  BurstRateEstimator est;
  feed_cbr(est, 9e9, sim::milliseconds(3));
  ASSERT_TRUE(est.has_estimate());
  EXPECT_GT(est.estimated_at(), sim::milliseconds(2));
}

TEST(BurstEstimator, IgnoresRetransmissions) {
  BurstRateEstimator est;
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    est.add_sample(i * 1231, seq, 1460);
    seq += 1460;
  }
  const std::uint64_t ignored_before = est.samples_ignored();
  // A retransmission: sequence jumps backwards.
  est.add_sample(100 * 1231, 0, 1460);
  EXPECT_EQ(est.samples_ignored(), ignored_before + 1);
  // And it must not poison the next estimate.
  est.add_sample(microseconds(400), seq, 1460);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_GT(est.rate_bps(), 0.0);
}

TEST(BurstEstimator, SubsamplingDoesNotBiasEstimate) {
  // The core property (§3.2.2): dropping arbitrary samples must not change
  // the estimate because sequence numbers carry the byte count.
  const double rate = 7e9;
  std::vector<std::pair<Time, std::uint64_t>> all;
  const double interval_ns = 1460 * 8.0 / rate * 1e9;
  std::uint64_t seq = 0;
  for (double t = 0; t < 5e6; t += interval_ns) {  // 5 ms
    all.emplace_back(static_cast<Time>(t), seq);
    seq += 1460;
  }
  sim::Rng rng(1234);
  for (double keep : {1.0, 0.5, 0.1, 0.02}) {
    BurstRateEstimator est;
    for (const auto& [t, s] : all) {
      // Always keep the first sample so the burst anchor exists.
      if (s == 0 || rng.uniform() < keep) est.add_sample(t, s, 1460);
    }
    ASSERT_TRUE(est.has_estimate()) << "keep=" << keep;
    EXPECT_NEAR(est.rate_bps(), rate, rate * 0.05) << "keep=" << keep;
  }
}

TEST(BurstEstimator, TracksRateChanges) {
  BurstRateEstimator est;
  // 2 Gbps for 3 ms, then 8 Gbps for 3 ms.
  std::uint64_t seq = 0;
  auto feed = [&](double rate, Time start, Time end) {
    const double interval = 1460 * 8.0 / rate * 1e9;
    for (double t = static_cast<double>(start);
         t < static_cast<double>(end); t += interval) {
      est.add_sample(static_cast<Time>(t), seq, 1460);
      seq += 1460;
    }
  };
  feed(2e9, 0, sim::milliseconds(3));
  feed(8e9, sim::milliseconds(3), sim::milliseconds(6));
  ASSERT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.rate_bps(), 8e9, 8e8);
}

TEST(BurstEstimator, SparseFlowAveragedOverGaps) {
  // One packet every 500 us (beyond the gap threshold): each sample closes
  // the previous "burst"; the rate is ~payload / 500 us.
  BurstRateEstimator est;
  for (int i = 0; i < 20; ++i) {
    est.add_sample(i * microseconds(500),
                   static_cast<std::uint64_t>(i) * 1460, 1460);
  }
  ASSERT_TRUE(est.has_estimate());
  const double expected = 1460 * 8.0 / 500e-6;
  EXPECT_NEAR(est.rate_bps(), expected, expected * 0.01);
}

TEST(BurstEstimator, ConfigurableThresholds) {
  EstimatorConfig cfg;
  cfg.min_burst_gap = microseconds(50);
  cfg.max_burst = microseconds(100);
  BurstRateEstimator est(cfg);
  feed_cbr(est, 9e9, sim::milliseconds(1));
  // Forced estimates every ~100 us over 1 ms.
  EXPECT_NEAR(static_cast<double>(est.estimates_produced()), 10.0, 2.0);
}

TEST(BurstEstimator, PartialOverlapAdvancesReorderFilter) {
  // Regression: a retransmission re-segmented across the old high-water
  // mark (its range starts below last_seq_end_ but ends beyond it) is
  // ignored, but must still advance the reorder filter past the bytes it
  // covers. Before the fix the filter stayed behind, so a *duplicate* of
  // the bytes beyond the old mark was later accepted as fresh in-order
  // data.
  BurstRateEstimator est;
  est.add_sample(0, 0, 1460);      // opens the burst, high water 1460
  est.add_sample(1231, 1460, 1460);  // in order, high water 2920
  EXPECT_EQ(est.samples_ignored(), 0u);

  // Re-segmented retransmission [2000, 3460): starts inside seen bytes,
  // ends 540 bytes past the high-water mark.
  est.add_sample(2462, 2000, 1460);
  EXPECT_EQ(est.samples_ignored(), 1u);

  // Duplicate of [2920, 3460): every byte was already covered by the
  // overlapping sample above, so this must be ignored too.
  est.add_sample(3693, 2920, 540);
  EXPECT_EQ(est.samples_ignored(), 2u);

  // Genuinely new data beyond the advanced filter is accepted again.
  est.add_sample(4924, 3460, 1460);
  EXPECT_EQ(est.samples_ignored(), 2u);
  EXPECT_EQ(est.samples_seen(), 5u);
}

TEST(BurstEstimator, ReorderedOldSegmentDoesNotRegressFilter) {
  // A fully stale sample (entirely below the high-water mark) must not
  // pull the filter backwards: max() keeps the mark, so a duplicate of
  // the newest bytes is still rejected afterwards.
  BurstRateEstimator est;
  est.add_sample(0, 0, 1460);
  est.add_sample(1231, 1460, 1460);    // high water 2920
  est.add_sample(2462, 0, 1460);       // stale retransmit of [0, 1460)
  EXPECT_EQ(est.samples_ignored(), 1u);
  est.add_sample(3693, 1460, 1460);    // duplicate of [1460, 2920)
  EXPECT_EQ(est.samples_ignored(), 2u);
}

TEST(BurstEstimator, OverlappingRetransmitsDoNotPerturbCbrEstimate) {
  // Two identical CBR streams, one laced with overlapping retransmits:
  // the ignored samples must leave the estimate untouched.
  BurstRateEstimator clean;
  BurstRateEstimator dirty;
  const std::uint32_t payload = 1460;
  const double interval_ns = payload * 8.0 / 5e9 * 1e9;
  std::uint64_t seq = 0;
  for (double t = 0; t < static_cast<double>(sim::milliseconds(5));
       t += interval_ns) {
    clean.add_sample(static_cast<Time>(t), seq, payload);
    dirty.add_sample(static_cast<Time>(t), seq, payload);
    // Every 50th packet, replay the previous segment re-split across the
    // high-water boundary.
    if (seq > payload && (seq / payload) % 50 == 0) {
      dirty.add_sample(static_cast<Time>(t), seq - payload / 2, payload);
    }
    seq += payload;
  }
  ASSERT_TRUE(clean.has_estimate());
  ASSERT_TRUE(dirty.has_estimate());
  EXPECT_GT(dirty.samples_ignored(), 0u);
  EXPECT_DOUBLE_EQ(dirty.rate_bps(), clean.rate_bps());
}

TEST(BurstEstimator, CountsSamples) {
  BurstRateEstimator est;
  for (int i = 0; i < 5; ++i) {
    est.add_sample(i * 1000, static_cast<std::uint64_t>(i) * 100, 100);
  }
  EXPECT_EQ(est.samples_seen(), 5u);
}

TEST(RollingAverage, ExactOnUniformStream) {
  RollingAverageEstimator est(microseconds(200));
  // 10 packets of 1460 over 200 us = 58.4 Mbit/s... feed till window full.
  const double rate = 5e9;
  const double interval = 1460 * 8.0 / rate * 1e9;
  Time t = 0;
  for (int i = 0; i < 2000; ++i) {
    t = static_cast<Time>(i * interval);
    est.add_sample(t, 1460);
  }
  EXPECT_NEAR(est.rate_bps(t), rate, rate * 0.02);
}

TEST(RollingAverage, JitteryDuringSlowStartBursts) {
  // Figure 10(a): with on/off bursts, a 200 us window sometimes sees zero
  // bytes and sometimes a whole burst -> wildly varying estimates.
  RollingAverageEstimator est(microseconds(200));
  // Bursts of 20 packets every 150 us: a 200 us window sees one burst or
  // two depending on phase, so instantaneous estimates swing widely.
  std::vector<std::pair<Time, std::int64_t>> events;
  for (int burst = 0; burst < 30; ++burst) {
    const Time start = burst * microseconds(150);
    for (int i = 0; i < 20; ++i) events.emplace_back(start + i * 1231, 1460);
  }
  std::vector<double> rates;
  std::size_t next = 0;
  for (Time t = 0; t < sim::milliseconds(4); t += microseconds(25)) {
    while (next < events.size() && events[next].first <= t) {
      est.add_sample(events[next].first,
                     static_cast<std::uint32_t>(events[next].second));
      ++next;
    }
    if (t > microseconds(300)) rates.push_back(est.rate_bps(t));
  }
  const double mx = *std::max_element(rates.begin(), rates.end());
  const double mn = *std::min_element(rates.begin(), rates.end());
  EXPECT_GT(mx, 1.5 * mn);  // jitter: window-phase dependent estimates
}

TEST(RollingAverage, WindowEvicts) {
  RollingAverageEstimator est(microseconds(100));
  est.add_sample(0, 1460);
  EXPECT_GT(est.rate_bps(microseconds(50)), 0.0);
  EXPECT_EQ(est.rate_bps(microseconds(500)), 0.0);
}

// Parameterized sweep: exact recovery across rates and sampling ratios.
class EstimatorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EstimatorSweep, RecoverRateUnderSampling) {
  const double rate = std::get<0>(GetParam());
  const double keep = std::get<1>(GetParam());
  sim::Rng rng(static_cast<std::uint64_t>(rate + keep * 1000));
  BurstRateEstimator est;
  const double interval_ns = 1460 * 8.0 / rate * 1e9;
  std::uint64_t seq = 0;
  for (double t = 0; t < 1e7; t += interval_ns) {  // 10 ms
    if (seq == 0 || rng.uniform() < keep) {
      est.add_sample(static_cast<Time>(t), seq, 1460);
    }
    seq += 1460;
  }
  ASSERT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.rate_bps(), rate, rate * 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSampling, EstimatorSweep,
    ::testing::Combine(::testing::Values(1e9, 2.5e9, 5e9, 9.4e9),
                       ::testing::Values(1.0, 0.3, 0.05)));

}  // namespace
}  // namespace planck::core
