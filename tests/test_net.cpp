// Tests for the network primitives: addresses, packets and flow keys,
// links, and topology graphs.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/addresses.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/route_info.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace planck::net {
namespace {

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

TEST(Addresses, HostMacRoundTrip) {
  for (int h : {0, 1, 15, 255}) {
    EXPECT_EQ(host_id_of_mac(host_mac(h)), h);
  }
}

TEST(Addresses, ShadowMacEncodesTreeAndHost) {
  for (int h : {0, 7, 15}) {
    for (int t : {1, 2, 3}) {
      const MacAddress mac = host_mac(h, t);
      int tree = 0;
      int id = -1;
      ASSERT_TRUE(is_shadow_mac(mac, &tree, &id));
      EXPECT_EQ(tree, t);
      EXPECT_EQ(id, h);
      EXPECT_EQ(host_id_of_mac(mac), h);
    }
  }
}

TEST(Addresses, BaseMacIsNotShadow) {
  EXPECT_FALSE(is_shadow_mac(host_mac(3)));
  EXPECT_FALSE(is_shadow_mac(kMacBroadcast));
}

TEST(Addresses, ShadowMacsDistinctFromBase) {
  std::set<MacAddress> macs;
  for (int h = 0; h < 16; ++h) {
    for (int t = 0; t < 4; ++t) macs.insert(host_mac(h, t));
  }
  EXPECT_EQ(macs.size(), 64u);
}

TEST(Addresses, HostIpRoundTrip) {
  for (int h : {0, 1, 15, 255, 300}) {
    EXPECT_EQ(host_id_of_ip(host_ip(h)), h);
  }
  EXPECT_EQ(host_id_of_ip(0), -1);
  EXPECT_EQ(host_id_of_ip((192u << 24) | 1), -1);
}

TEST(Addresses, ShadowMacRejectsOutOfRangeHostIds) {
  // A stray 48-bit value inside the shadow OUI whose stride offset is not
  // a provisioned host id must not decode as a shadow MAC.
  const MacAddress bogus_host =
      kShadowMacBase + static_cast<MacAddress>(kMaxAddressableHosts);
  EXPECT_FALSE(is_shadow_mac(bogus_host));
  EXPECT_EQ(host_id_of_mac(bogus_host), -1);
  const MacAddress last_valid =
      kShadowMacBase + static_cast<MacAddress>(kMaxAddressableHosts - 1);
  int tree = 0;
  int id = -1;
  ASSERT_TRUE(is_shadow_mac(last_valid, &tree, &id));
  EXPECT_EQ(tree, 1);
  EXPECT_EQ(id, kMaxAddressableHosts - 1);
}

TEST(Addresses, ShadowMacRejectsUnprovisionedTrees) {
  // Shadow trees run 1..kMaxProvisionedTrees-1; the stride one past the
  // last provisioned tree is not a shadow MAC.
  EXPECT_TRUE(is_shadow_mac(host_mac(0, kMaxProvisionedTrees - 1)));
  const MacAddress past = kShadowMacBase +
                          static_cast<MacAddress>(kMaxProvisionedTrees - 1) *
                              kShadowTreeStride;
  EXPECT_FALSE(is_shadow_mac(past));
}

TEST(Addresses, BaseMacBoundIsSymmetric) {
  EXPECT_EQ(host_id_of_mac(host_mac(kMaxAddressableHosts - 1)),
            kMaxAddressableHosts - 1);
  EXPECT_EQ(host_id_of_mac(kHostMacBase +
                           static_cast<MacAddress>(kMaxAddressableHosts)),
            -1);
}

TEST(Addresses, HostIpThrowsPastAddressablePlan) {
  EXPECT_NO_THROW(host_ip(kMaxAddressableHosts - 1));
  EXPECT_THROW(host_ip(kMaxAddressableHosts), std::out_of_range);
  EXPECT_THROW(host_ip(-1), std::out_of_range);
}

TEST(Addresses, HostIdOfIpRejectsForeignSecondOctet) {
  // 10.1.0.1 is outside the plan's 10.0/16 block — previously it decoded
  // as an alias of 10.0.0.1.
  const IpAddress foreign = (10u << 24) | (1u << 16) | 1u;
  EXPECT_EQ(host_id_of_ip(foreign), -1);
  EXPECT_EQ(host_id_of_ip(host_ip(kMaxAddressableHosts - 1)),
            kMaxAddressableHosts - 1);
}

TEST(Addresses, Formatting) {
  EXPECT_EQ(mac_to_string(host_mac(1)), "02:00:00:00:00:01");
  EXPECT_EQ(ip_to_string(host_ip(0)), "10.0.0.1");
  EXPECT_EQ(ip_to_string(host_ip(250)), "10.0.1.1");
}

// ---------------------------------------------------------------------------
// Packets and flow keys
// ---------------------------------------------------------------------------

TEST(Packet, WireAndFrameSizes) {
  Packet p;
  p.payload = 1460;
  EXPECT_EQ(p.frame_size(), 1518);
  EXPECT_EQ(p.wire_size(), 1538);
  p.payload = 0;
  EXPECT_EQ(p.frame_size(), 58);
  p.proto = Protocol::kArp;
  EXPECT_EQ(p.frame_size(), 64);
}

TEST(Packet, FlagHelpers) {
  Packet p;
  p.flags = kSyn | kAck;
  EXPECT_TRUE(p.has_flag(kSyn));
  EXPECT_TRUE(p.has_flag(kAck));
  EXPECT_FALSE(p.has_flag(kFin));
}

TEST(FlowKey, EqualityAndReverse) {
  FlowKey k{host_ip(0), host_ip(1), 1000, 2000, Protocol::kTcp};
  EXPECT_EQ(k, k);
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src_ip, k.dst_ip);
  EXPECT_EQ(r.src_port, k.dst_port);
  EXPECT_EQ(r.reversed(), k);
  EXPECT_NE(r, k);
}

TEST(FlowKey, HashSpreadsKeys) {
  std::unordered_set<std::size_t> hashes;
  FlowKeyHash hash;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      FlowKey k{host_ip(s), host_ip(d), static_cast<std::uint16_t>(10000 + s),
                5001, Protocol::kTcp};
      hashes.insert(hash(k));
    }
  }
  EXPECT_GT(hashes.size(), 230u);  // 240 keys, near-zero collisions
}

TEST(DirectedLink, HashAndEquality) {
  DirectedLinkHash hash;
  DirectedLink a{3, 1};
  DirectedLink b{3, 1};
  DirectedLink c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(hash(a), hash(b));
}

TEST(SwitchRouteView, LookupsAndMisses) {
  SwitchRouteView view;
  view.out_port_by_dst[host_mac(4)] = 2;
  view.in_port_by_pair[MacPair{host_mac(0), host_mac(4)}] = 1;
  EXPECT_EQ(view.out_port(host_mac(4)), 2);
  EXPECT_EQ(view.out_port(host_mac(5)), -1);
  EXPECT_EQ(view.in_port(host_mac(0), host_mac(4)), 1);
  EXPECT_EQ(view.in_port(host_mac(1), host_mac(4)), -1);
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

class Sink : public Node {
 public:
  void handle_packet(const Packet& packet, int in_port) override {
    packets.push_back(packet);
    ports.push_back(in_port);
  }
  std::vector<Packet> packets;
  std::vector<int> ports;
};

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Simulation sim;
  Link link(sim, sim::gigabits_per_sec(10), sim::microseconds(10));
  Sink sink;
  link.connect(&sink, 7);

  Packet p;
  p.payload = 1460;
  const sim::Time free_at = link.transmit(p);
  // 1538 B at 10 Gbps = 1230.4 ns; the link carries the fractional part
  // forward, so the first packet serializes in 1230 ns.
  EXPECT_EQ(free_at, 1230);
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.ports[0], 7);
  EXPECT_EQ(sim.now(), 1230 + sim::microseconds(10));
}

TEST(Link, BusyUntilFreeAt) {
  sim::Simulation sim;
  Link link(sim, sim::gigabits_per_sec(1), 0);
  Sink sink;
  link.connect(&sink, 0);
  Packet p;
  p.payload = 1460;
  link.transmit(p);
  EXPECT_TRUE(link.busy());
  sim.run();
  EXPECT_FALSE(link.busy());
}

TEST(Link, CountsTraffic) {
  sim::Simulation sim;
  Link link(sim, sim::gigabits_per_sec(10), 0);
  Sink sink;
  link.connect(&sink, 0);
  Packet p;
  p.payload = 100;
  link.transmit(p);
  sim.run();
  link.transmit(p);
  sim.run();
  EXPECT_EQ(link.packets_sent(), sim::packets(2));
  EXPECT_EQ(link.bytes_sent(), sim::bytes(2 * p.wire_size()));
}

TEST(Link, BackToBackPacketsKeepLineRate) {
  sim::Simulation sim;
  Link link(sim, sim::gigabits_per_sec(10), 0);
  Sink sink;
  link.connect(&sink, 0);
  Packet p;
  p.payload = 1460;
  sim::Time t = 0;
  for (int i = 0; i < 10; ++i) {
    sim.run_until(t);
    t = link.transmit(p);
  }
  sim.run();
  EXPECT_EQ(sink.packets.size(), 10u);
  // Average per-packet time is exactly 1230.4 ns thanks to the carry.
  EXPECT_EQ(sim.now(), 12304);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(Topology, StarShape) {
  const TopologyGraph g = make_star(4, LinkSpec{});
  EXPECT_EQ(g.num_hosts(), 4);
  EXPECT_EQ(g.num_switches(), 1);
  const int sw = g.switch_node(0);
  EXPECT_EQ(g.num_ports(sw), 4);
  for (int h = 0; h < 4; ++h) {
    const PortRef peer = g.peer(g.host_node(h), 0);
    EXPECT_EQ(peer.node, sw);
    EXPECT_EQ(peer.port, h);
    EXPECT_EQ(g.peer(sw, h).node, g.host_node(h));
  }
}

TEST(Topology, FatTreeCounts) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  EXPECT_EQ(g.num_hosts(), 16);
  EXPECT_EQ(g.num_switches(), 20);
  EXPECT_EQ(g.num_nodes(), 36);
}

TEST(Topology, FatTreeAllDataPortsWired) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  for (int sw : g.switches()) {
    for (int p = 0; p < g.num_ports(sw); ++p) {
      EXPECT_TRUE(g.wired(sw, p)) << "switch node " << sw << " port " << p;
    }
  }
  for (int h : g.hosts()) EXPECT_TRUE(g.wired(h, 0));
}

TEST(Topology, FatTreeWiringIsSymmetric) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  for (int n = 0; n < g.num_nodes(); ++n) {
    for (int p = 0; p < g.num_ports(n); ++p) {
      if (!g.wired(n, p)) continue;
      const PortRef peer = g.peer(n, p);
      const PortRef back = g.peer(peer.node, peer.port);
      EXPECT_EQ(back.node, n);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(Topology, FatTreeHostPlacement) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  const TopologyShape& sh = g.shape();
  for (int h = 0; h < g.num_hosts(); ++h) {
    const PortRef up = g.peer(g.host_node(h), 0);
    const int expected_edge = g.switch_node(
        sh.edge_switch_index(sh.pod_of_host(h), sh.edge_of_host(h)));
    EXPECT_EQ(up.node, expected_edge);
    EXPECT_EQ(up.port, sh.leaf_of_host(h));
  }
}

TEST(Topology, FatTreeCoreReachesEveryPod) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  const TopologyShape& sh = g.shape();
  for (int c = 0; c < sh.num_core; ++c) {
    const int core = g.switch_node(sh.core_switch_index(c));
    for (int p = 0; p < sh.num_pods; ++p) {
      const PortRef peer = g.peer(core, p);
      const int expected_agg =
          g.switch_node(sh.agg_switch_index(p, sh.agg_for_core(c)));
      EXPECT_EQ(peer.node, expected_agg);
      EXPECT_EQ(peer.port, sh.agg_port_for_core(c));
    }
  }
}

TEST(Topology, ShapeDescribesLegacyFatTree) {
  // The k=4 shim must advertise exactly the 16-host testbed's structure.
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  const TopologyShape& sh = g.shape();
  EXPECT_EQ(sh.kind, FabricKind::kFatTree);
  EXPECT_EQ(sh.k, 4);
  EXPECT_EQ(sh.num_hosts, 16);
  EXPECT_EQ(sh.num_switches, 20);
  EXPECT_EQ(sh.num_pods, 4);
  EXPECT_EQ(sh.edge_per_pod, 2);
  EXPECT_EQ(sh.agg_per_pod, 2);
  EXPECT_EQ(sh.num_core, 4);
  EXPECT_EQ(sh.provisioned_trees, 4);
  EXPECT_EQ(sh.max_trees(), 4);
  // Spot-check the index helpers against the historical dense layout.
  EXPECT_EQ(sh.pod_of_host(13), 3);
  EXPECT_EQ(sh.edge_of_host(13), 0);
  EXPECT_EQ(sh.edge_switch_index(3, 1), 7);
  EXPECT_EQ(sh.agg_switch_index(3, 1), 15);
  EXPECT_EQ(sh.core_switch_index(2), 18);
  EXPECT_EQ(sh.agg_for_core(2), 1);
  EXPECT_EQ(sh.agg_port_for_core(2), 2);
}

TEST(Topology, ParametricFatTreeCounts) {
  for (int k : {4, 6, 8}) {
    const TopologyGraph g = make_fat_tree(k, LinkSpec{});
    EXPECT_EQ(g.num_hosts(), k * k * k / 4);
    EXPECT_EQ(g.num_switches(), k * k + k * k / 4);
    for (int sw : g.switches()) {
      for (int p = 0; p < g.num_ports(sw); ++p) {
        ASSERT_TRUE(g.wired(sw, p)) << "k=" << k << " node " << sw;
      }
    }
  }
}

TEST(Topology, FatTreeRejectsBadRadix) {
  EXPECT_THROW(make_fat_tree(3, LinkSpec{}), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0, LinkSpec{}), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(-4, LinkSpec{}), std::invalid_argument);
}

TEST(Topology, FatTreeRejectsUnaddressableScale) {
  // k=64 would be 65,536 hosts — past the 10.0.x.y plan, so the builder
  // must refuse rather than alias IPs.
  EXPECT_THROW(make_fat_tree(64, LinkSpec{}), std::length_error);
  EXPECT_THROW(make_leaf_spine(300, 4, 250, LinkSpec{}), std::length_error);
  // The paper's §9.1 64-port datapoint (k=62, 59'582 hosts) still builds.
  EXPECT_NO_THROW(make_fat_tree(62, LinkSpec{}));
}

TEST(Topology, LeafSpineWiring) {
  const TopologyGraph g = make_leaf_spine(3, 2, 4, LinkSpec{});
  const TopologyShape& sh = g.shape();
  EXPECT_EQ(sh.kind, FabricKind::kLeafSpine);
  EXPECT_EQ(g.num_hosts(), 12);
  EXPECT_EQ(g.num_switches(), 5);
  EXPECT_EQ(sh.max_trees(), 2);
  for (int h = 0; h < g.num_hosts(); ++h) {
    const PortRef up = g.peer(g.host_node(h), 0);
    EXPECT_EQ(up.node,
              g.switch_node(sh.leaf_switch_index(sh.leaf_of_ls_host(h))));
    EXPECT_EQ(up.port, sh.leaf_port_of_ls_host(h));
  }
  for (int l = 0; l < sh.num_leaves; ++l) {
    for (int s = 0; s < sh.num_spines; ++s) {
      const PortRef peer =
          g.peer(g.switch_node(sh.leaf_switch_index(l)),
                 sh.leaf_port_for_spine(s));
      EXPECT_EQ(peer.node, g.switch_node(sh.spine_switch_index(s)));
      EXPECT_EQ(peer.port, l);
    }
  }
}

TEST(Topology, HandWiredGraphHasUnknownShape) {
  TopologyGraph g;
  g.add_host();
  g.add_switch(1);
  EXPECT_EQ(g.shape().kind, FabricKind::kUnknown);
  EXPECT_EQ(g.shape().max_trees(), 0);
}

TEST(Topology, LinkSpecStored) {
  LinkSpec spec;
  spec.rate = sim::gigabits_per_sec(1);
  spec.propagation = sim::microseconds(3);
  const TopologyGraph g = make_star(2, spec);
  const auto& got = g.link_spec(g.host_node(0), 0);
  EXPECT_EQ(got.rate, spec.rate);
  EXPECT_EQ(got.propagation, spec.propagation);
}

TEST(Topology, HostAndSwitchIndices) {
  const TopologyGraph g = make_fat_tree_16(LinkSpec{});
  for (int h = 0; h < g.num_hosts(); ++h) {
    EXPECT_EQ(g.host_index(g.host_node(h)), h);
    EXPECT_TRUE(g.is_host(g.host_node(h)));
  }
  for (int s = 0; s < g.num_switches(); ++s) {
    EXPECT_EQ(g.switch_index(g.switch_node(s)), s);
    EXPECT_TRUE(g.is_switch(g.switch_node(s)));
  }
}

}  // namespace
}  // namespace planck::net
