// Tests for multipath routing (§6.2): PAST spanning trees on the fat-tree,
// shadow-tree alternates, path validity against the physical wiring,
// destination-consistency (a tree is a tree), and path diversity.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "controller/routing.hpp"
#include "net/addresses.hpp"
#include "net/topology.hpp"

namespace planck::controller {
namespace {

using net::TopologyGraph;

struct Fixture {
  Fixture() : graph(net::make_fat_tree_16(net::LinkSpec{})), routing(graph) {}
  TopologyGraph graph;
  Routing routing;
};

TEST(Routing, FatTreeHasFourTrees) {
  Fixture f;
  EXPECT_EQ(f.routing.num_trees(), 4);
  EXPECT_EQ(f.routing.num_hosts(), 16);
}

TEST(Routing, StarHasOneTrivialTree) {
  const TopologyGraph g = net::make_star(8, net::LinkSpec{});
  Routing r(g);
  EXPECT_EQ(r.num_trees(), 1);
  const net::RoutePath& p = r.path(2, 5, 0);
  ASSERT_EQ(p.hops.size(), 1u);
  EXPECT_EQ(p.hops[0].in_port, 2);
  EXPECT_EQ(p.hops[0].out_port, 5);
}

TEST(Routing, SelfPathIsEmpty) {
  Fixture f;
  for (int t = 0; t < 4; ++t) {
    EXPECT_TRUE(f.routing.path(3, 3, t).hops.empty());
  }
}

TEST(Routing, UnsupportedGraphThrows) {
  TopologyGraph g;
  g.add_host();
  g.add_host();
  g.add_switch(2);
  g.add_switch(2);
  EXPECT_THROW(Routing r(g), std::invalid_argument);
}

TEST(Routing, PathHopLengthsByLocality) {
  Fixture f;
  // Same edge: 1 hop. Same pod, different edge: 3. Different pod: 5.
  EXPECT_EQ(f.routing.path(0, 1, 0).hops.size(), 1u);
  EXPECT_EQ(f.routing.path(0, 2, 0).hops.size(), 3u);
  EXPECT_EQ(f.routing.path(0, 4, 0).hops.size(), 5u);
}

/// Validates a path against the physical wiring: consecutive hops must be
/// joined by actual cables, the first hop reached from the source host,
/// and the last hop's output port wired to the destination host.
void check_path_physical(const TopologyGraph& g, const net::RoutePath& p) {
  ASSERT_FALSE(p.hops.empty());
  const int src_node = g.host_node(p.src_host);
  const int dst_node = g.host_node(p.dst_host);
  // Source uplink lands on the first hop at its in_port.
  const net::PortRef first = g.peer(src_node, 0);
  EXPECT_EQ(first.node, p.hops.front().switch_node);
  EXPECT_EQ(first.port, p.hops.front().in_port);
  // Chain.
  for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
    const net::PortRef next =
        g.peer(p.hops[i].switch_node, p.hops[i].out_port);
    EXPECT_EQ(next.node, p.hops[i + 1].switch_node);
    EXPECT_EQ(next.port, p.hops[i + 1].in_port);
  }
  // Egress reaches the destination host.
  const net::PortRef last =
      g.peer(p.hops.back().switch_node, p.hops.back().out_port);
  EXPECT_EQ(last.node, dst_node);
}

TEST(Routing, AllPathsArePhysicallyValid) {
  Fixture f;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      for (int t = 0; t < 4; ++t) {
        check_path_physical(f.graph, f.routing.path(s, d, t));
      }
    }
  }
}

TEST(Routing, TreesAreDestinationConsistent) {
  // PAST property: forwarding is a function of (switch, destination MAC)
  // alone — every source's path to (d, t) must use the same output port at
  // any shared switch. This is what lets the controller install one MAC
  // rule per (d, t) per switch (§4.1).
  Fixture f;
  for (int d = 0; d < 16; ++d) {
    for (int t = 0; t < 4; ++t) {
      std::map<int, int> out_port_at_switch;
      for (int s = 0; s < 16; ++s) {
        if (s == d) continue;
        for (const net::PathHop& hop : f.routing.path(s, d, t).hops) {
          const auto [it, inserted] =
              out_port_at_switch.emplace(hop.switch_node, hop.out_port);
          EXPECT_EQ(it->second, hop.out_port)
              << "switch " << hop.switch_node << " d=" << d << " t=" << t;
        }
      }
    }
  }
}

TEST(Routing, InterPodTreesUseDistinctCores) {
  Fixture f;
  const net::TopologyShape& shape = f.graph.shape();
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (shape.pod_of_host(s) == shape.pod_of_host(d)) continue;
      std::set<int> cores;
      for (int t = 0; t < 4; ++t) {
        const net::RoutePath& p = f.routing.path(s, d, t);
        ASSERT_EQ(p.hops.size(), 5u);
        cores.insert(p.hops[2].switch_node);
      }
      EXPECT_EQ(cores.size(), 4u) << "s=" << s << " d=" << d;
    }
  }
}

TEST(Routing, AdjacentTreePairsAreLinkDisjointAcrossAggGroups) {
  // In a k=4 fat-tree, trees through agg 0 (cores 0,1) and agg 1
  // (cores 2,3) share no links for a given src/dst pair. Relative trees
  // t and t+2 always land in different agg groups.
  Fixture f;
  for (int s : {0, 3, 7, 12}) {
    for (int d : {4, 9, 15}) {
      if (s == d ||
          f.graph.shape().pod_of_host(s) == f.graph.shape().pod_of_host(d)) {
        continue;
      }
      for (int t = 0; t < 2; ++t) {
        std::set<std::pair<int, int>> links_a;
        for (const auto& l :
             f.routing.links_on_path(f.routing.path(s, d, t))) {
          links_a.insert({l.node, l.port});
        }
        int shared = 0;
        for (const auto& l :
             f.routing.links_on_path(f.routing.path(s, d, t + 2))) {
          shared += static_cast<int>(links_a.count({l.node, l.port}));
        }
        // Only the final egress-switch -> host link can coincide.
        EXPECT_LE(shared, 1) << "s=" << s << " d=" << d << " t=" << t;
      }
    }
  }
}

TEST(Routing, BaseCoreSpreadsDestinations) {
  // PAST hashing: the 16 destinations should not all share one core.
  std::set<int> cores;
  for (int d = 0; d < 16; ++d) cores.insert(Routing::base_core(d, 4));
  EXPECT_EQ(cores.size(), 4u);
}

TEST(Routing, LinksOnPathMatchesHops) {
  Fixture f;
  const net::RoutePath& p = f.routing.path(0, 15, 1);
  const auto links = f.routing.links_on_path(p);
  ASSERT_EQ(links.size(), p.hops.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].node, p.hops[i].switch_node);
    EXPECT_EQ(links[i].port, p.hops[i].out_port);
  }
}

TEST(Routing, SamePodPathsAvoidCore) {
  Fixture f;
  for (int t = 0; t < 4; ++t) {
    const net::RoutePath& p = f.routing.path(0, 2, t);
    ASSERT_EQ(p.hops.size(), 3u);
    // Middle hop is an aggregation switch, never a core.
    const int agg = p.hops[1].switch_node;
    const int idx = f.graph.switch_index(agg);
    EXPECT_GE(idx, 8);
    EXPECT_LT(idx, 16);
  }
}

TEST(Routing, PathMetadataFilled) {
  Fixture f;
  const net::RoutePath& p = f.routing.path(2, 9, 3);
  EXPECT_EQ(p.src_host, 2);
  EXPECT_EQ(p.dst_host, 9);
  EXPECT_EQ(p.tree, 3);
}

// Parameterized: every (src, dst) pair on every tree reaches exactly the
// destination and never loops.
class RoutingPairTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoutingPairTest, NoLoopsOnAnyTree) {
  Fixture f;
  const int s = std::get<0>(GetParam());
  const int d = std::get<1>(GetParam());
  if (s == d) GTEST_SKIP();
  for (int t = 0; t < 4; ++t) {
    const net::RoutePath& p = f.routing.path(s, d, t);
    std::set<int> visited;
    for (const net::PathHop& hop : p.hops) {
      EXPECT_TRUE(visited.insert(hop.switch_node).second)
          << "loop at switch " << hop.switch_node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RoutingPairTest,
    ::testing::Combine(::testing::Values(0, 1, 5, 10, 15),
                       ::testing::Values(0, 2, 7, 8, 14)));

// ---------------------------------------------------------------------------
// Parametric fabrics: the same PAST properties must hold at every radix,
// not just the paper's k=4 testbed.
// ---------------------------------------------------------------------------

class FatTreeRadixTest : public ::testing::TestWithParam<int> {
 protected:
  FatTreeRadixTest()
      : graph(net::make_fat_tree(GetParam(), net::LinkSpec{})),
        routing(graph) {}
  TopologyGraph graph;
  Routing routing;
};

TEST_P(FatTreeRadixTest, ShapeAndTreeCount) {
  const int k = GetParam();
  const net::TopologyShape& sh = graph.shape();
  EXPECT_EQ(sh.kind, net::FabricKind::kFatTree);
  EXPECT_EQ(graph.num_hosts(), k * k * k / 4);
  EXPECT_EQ(graph.num_switches(), k * k + k * k / 4);
  EXPECT_EQ(routing.num_trees(),
            std::min(k * k / 4, net::kMaxProvisionedTrees));
}

TEST_P(FatTreeRadixTest, AllPathsReachDestinationWithoutLoops) {
  const int n = routing.num_hosts();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      for (int t = 0; t < routing.num_trees(); ++t) {
        const net::RoutePath& p = routing.path(s, d, t);
        check_path_physical(graph, p);
        std::set<int> visited;
        for (const net::PathHop& hop : p.hops) {
          ASSERT_TRUE(visited.insert(hop.switch_node).second)
              << "loop at switch " << hop.switch_node << " k=" << GetParam()
              << " s=" << s << " d=" << d << " t=" << t;
        }
      }
    }
  }
}

TEST_P(FatTreeRadixTest, InterPodTreesUseDistinctCores) {
  const net::TopologyShape& sh = graph.shape();
  const int n = routing.num_hosts();
  // Sample sources; scan all destinations so every base_core is covered.
  for (int s = 0; s < n; s += 5) {
    for (int d = 0; d < n; ++d) {
      if (sh.pod_of_host(s) == sh.pod_of_host(d)) continue;
      std::set<int> cores;
      for (int t = 0; t < routing.num_trees(); ++t) {
        const net::RoutePath& p = routing.path(s, d, t);
        ASSERT_EQ(p.hops.size(), 5u);
        cores.insert(p.hops[2].switch_node);
      }
      EXPECT_EQ(cores.size(),
                static_cast<std::size_t>(routing.num_trees()))
          << "s=" << s << " d=" << d;
    }
  }
}

TEST_P(FatTreeRadixTest, TreesAreDestinationConsistent) {
  const int n = routing.num_hosts();
  for (int d = 0; d < n; d += 3) {
    for (int t = 0; t < routing.num_trees(); ++t) {
      std::map<int, int> out_port_at_switch;
      for (int s = 0; s < n; ++s) {
        if (s == d) continue;
        for (const net::PathHop& hop : routing.path(s, d, t).hops) {
          const auto [it, inserted] =
              out_port_at_switch.emplace(hop.switch_node, hop.out_port);
          ASSERT_EQ(it->second, hop.out_port)
              << "switch " << hop.switch_node << " d=" << d << " t=" << t;
        }
      }
    }
  }
}

TEST_P(FatTreeRadixTest, LinksOnPathMatchesGraphWiring) {
  const int n = routing.num_hosts();
  for (int s = 0; s < n; s += 7) {
    for (int d = 0; d < n; d += 3) {
      if (s == d) continue;
      for (int t = 0; t < routing.num_trees(); ++t) {
        const net::RoutePath& p = routing.path(s, d, t);
        const auto links = routing.links_on_path(p);
        ASSERT_EQ(links.size(), p.hops.size());
        for (std::size_t i = 0; i < links.size(); ++i) {
          EXPECT_EQ(links[i].node, p.hops[i].switch_node);
          EXPECT_EQ(links[i].port, p.hops[i].out_port);
          // Every reported link must be a real, wired cable.
          EXPECT_TRUE(graph.wired(links[i].node, links[i].port));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radix, FatTreeRadixTest, ::testing::Values(4, 6, 8));

// ---------------------------------------------------------------------------
// Leaf-spine
// ---------------------------------------------------------------------------

struct LeafSpineFixture {
  LeafSpineFixture()
      : graph(net::make_leaf_spine(4, 4, 4, net::LinkSpec{})),
        routing(graph) {}
  TopologyGraph graph;
  Routing routing;
};

TEST(RoutingLeafSpine, ShapeAndTreeCount) {
  LeafSpineFixture f;
  EXPECT_EQ(f.graph.shape().kind, net::FabricKind::kLeafSpine);
  EXPECT_EQ(f.routing.num_hosts(), 16);
  EXPECT_EQ(f.graph.num_switches(), 8);
  EXPECT_EQ(f.routing.num_trees(), 4);  // one tree per spine
}

TEST(RoutingLeafSpine, PathHopLengthsByLocality) {
  LeafSpineFixture f;
  // Same leaf: 1 hop. Different leaves: leaf-spine-leaf = 3 hops.
  EXPECT_EQ(f.routing.path(0, 1, 0).hops.size(), 1u);
  EXPECT_EQ(f.routing.path(0, 5, 0).hops.size(), 3u);
}

TEST(RoutingLeafSpine, AllPathsValidLoopFreeAndSpineDisjoint) {
  LeafSpineFixture f;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      std::set<int> spines;
      for (int t = 0; t < f.routing.num_trees(); ++t) {
        const net::RoutePath& p = f.routing.path(s, d, t);
        check_path_physical(f.graph, p);
        std::set<int> visited;
        for (const net::PathHop& hop : p.hops) {
          ASSERT_TRUE(visited.insert(hop.switch_node).second);
        }
        if (p.hops.size() == 3u) spines.insert(p.hops[1].switch_node);
      }
      if (f.graph.shape().leaf_of_ls_host(s) !=
          f.graph.shape().leaf_of_ls_host(d)) {
        EXPECT_EQ(spines.size(), 4u) << "s=" << s << " d=" << d;
      }
    }
  }
}

TEST(RoutingLeafSpine, TreesAreDestinationConsistent) {
  LeafSpineFixture f;
  for (int d = 0; d < 16; ++d) {
    for (int t = 0; t < f.routing.num_trees(); ++t) {
      std::map<int, int> out_port_at_switch;
      for (int s = 0; s < 16; ++s) {
        if (s == d) continue;
        for (const net::PathHop& hop : f.routing.path(s, d, t).hops) {
          const auto [it, inserted] =
              out_port_at_switch.emplace(hop.switch_node, hop.out_port);
          ASSERT_EQ(it->second, hop.out_port);
        }
      }
    }
  }
}

TEST(RoutingProvisioning, TreeKnobCapsShadowTrees) {
  // A k=8 fabric supports 16 trees but can be provisioned for fewer.
  const TopologyGraph g =
      net::make_fat_tree(8, net::LinkSpec{}, /*provisioned_trees=*/4);
  Routing r(g);
  EXPECT_EQ(r.num_trees(), 4);
  // And the cap never exceeds what the address plane can encode.
  const TopologyGraph full = net::make_fat_tree(8, net::LinkSpec{});
  EXPECT_EQ(full.shape().provisioned_trees, 16);
  EXPECT_LE(full.shape().provisioned_trees, net::kMaxProvisionedTrees);
}

}  // namespace
}  // namespace planck::controller
