// Property test for the timing-wheel scheduler: drive EventQueue and a
// naive sorted-vector reference model through randomized push / cancel /
// pop / run_until interleavings and require identical pop order — including
// FIFO tie-breaks at equal timestamps. Horizons are drawn from every wheel
// level (near, the three far wheels, and the overflow heap) so cascades and
// page advances are exercised, and pushes use all three event kinds so the
// typed paths share the ordering proof.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace planck::sim {
namespace {

/// The reference model: a flat vector popped by linear scan for the
/// smallest (when, push-order). Obviously correct, O(n) per op.
class ReferenceQueue {
 public:
  std::uint64_t push(Time when, int tag) {
    if (when < floor_) when = floor_;  // same clamp as the wheel
    events_.push_back(Ref{when, next_order_++, tag, /*cancelled=*/false});
    return events_.back().order;
  }

  void cancel(std::uint64_t order) {
    for (Ref& r : events_) {
      if (r.order == order) r.cancelled = true;
    }
  }

  bool empty() const {
    return std::none_of(events_.begin(), events_.end(),
                        [](const Ref& r) { return !r.cancelled; });
  }

  Time next_time() {
    const Ref* best = find_min();
    return best->when;
  }

  /// Pops the earliest live event; returns its (when, tag).
  std::pair<Time, int> pop() {
    Ref* best = find_min();
    const std::pair<Time, int> out{best->when, best->tag};
    floor_ = best->when;
    best->cancelled = true;  // consumed
    return out;
  }

  void set_floor(Time t) {
    if (t > floor_) floor_ = t;
  }

 private:
  struct Ref {
    Time when;
    std::uint64_t order;
    int tag;
    bool cancelled;
  };

  Ref* find_min() {
    Ref* best = nullptr;
    for (Ref& r : events_) {
      if (r.cancelled) continue;
      if (best == nullptr || r.when < best->when ||
          (r.when == best->when && r.order < best->order)) {
        best = &r;
      }
    }
    return best;
  }

  std::vector<Ref> events_;
  std::uint64_t next_order_ = 1;
  Time floor_ = 0;
};

/// One offset drawn from a horizon class chosen to hit a specific wheel
/// level: same-tick, near wheel, each far wheel, and the overflow heap.
Duration random_offset(Rng& rng) {
  switch (rng.below(6)) {
    case 0: return 0;                                            // same ns
    case 1: return static_cast<Duration>(rng.below(8192));       // near
    case 2: return static_cast<Duration>(rng.below(1u << 21));   // level 1
    case 3: return static_cast<Duration>(rng.below(1u << 29));   // level 2
    case 4: return static_cast<Duration>(rng.below(1ull << 37)); // level 3
    default:
      return static_cast<Duration>(rng.below(1ull << 40));       // overflow
  }
}

void run_property_trial(std::uint64_t seed, int ops) {
  EventQueue wheel;
  ReferenceQueue model;
  Rng rng(seed);

  Time now = 0;
  int next_tag = 0;
  std::vector<int> wheel_tags;  // filled by executed events
  std::vector<std::pair<EventId, std::uint64_t>> live;  // (wheel id, model id)

  net::Packet pkt;
  pkt.payload = 64;
  const auto call_fn = [](void* target, std::uint32_t aux) {
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };
  const auto packet_fn = [](void* target, std::uint32_t aux,
                            const net::Packet&) {
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };

  const auto push_one = [&] {
    const Time when = now + random_offset(rng);
    const int tag = next_tag++;
    EventId id = 0;
    switch (rng.below(3)) {
      case 0:
        id = wheel.push(when, [&wheel_tags, tag] { wheel_tags.push_back(tag); });
        break;
      case 1:
        id = wheel.push_call(when, &wheel_tags,
                             static_cast<std::uint32_t>(tag), call_fn);
        break;
      default:
        id = wheel.push_packet(when, &wheel_tags,
                               static_cast<std::uint32_t>(tag), packet_fn,
                               pkt);
        break;
    }
    live.emplace_back(id, model.push(when, tag));
  };

  const auto pop_one = [&] {
    ASSERT_FALSE(wheel.empty());
    ASSERT_FALSE(model.empty());
    ASSERT_EQ(wheel.next_time(), model.next_time());
    const std::size_t before = wheel_tags.size();
    Time when = 0;
    wheel.run_top(&when);
    const auto [ref_when, ref_tag] = model.pop();
    ASSERT_EQ(when, ref_when);
    ASSERT_EQ(wheel_tags.size(), before + 1);
    ASSERT_EQ(wheel_tags.back(), ref_tag);
    now = when;
  };

  for (int op = 0; op < ops; ++op) {
    if (::testing::Test::HasFatalFailure()) return;
    const std::uint64_t r = rng.below(100);
    if (r < 55) {
      push_one();
    } else if (r < 70 && !live.empty()) {
      // Cancel a random id — possibly one that already fired, which must be
      // a safe no-op on the wheel and is modeled as cancel-of-consumed.
      const std::size_t pick = rng.below(live.size());
      wheel.cancel(live[pick].first);
      model.cancel(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (r < 90) {
      if (!wheel.empty()) pop_one();
      ASSERT_EQ(wheel.empty(), model.empty());
    } else {
      // run_until: drain everything up to a deadline, then advance the
      // clock floor past it (subsequent pushes clamp identically).
      const Time deadline = now + static_cast<Duration>(rng.below(1u << 22));
      while (!wheel.empty() && wheel.next_time() <= deadline) {
        pop_one();
        if (::testing::Test::HasFatalFailure()) return;
      }
      ASSERT_EQ(wheel.empty(), model.empty());
      now = deadline;
      model.set_floor(deadline);
    }
  }
  // Drain to the end: the full remaining order must match.
  while (!wheel.empty()) {
    pop_one();
    if (::testing::Test::HasFatalFailure()) return;
  }
  ASSERT_TRUE(model.empty());
  ASSERT_EQ(wheel.size(), 0u);
}

class EventWheelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventWheelProperty, MatchesReferenceModel) {
  run_property_trial(GetParam(), /*ops=*/4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventWheelProperty,
                         ::testing::Values(1u, 42u, 20260805u));

// A directed FIFO burst: many events on one nanosecond, across kinds and
// cascade boundaries, must drain in exact push order.
TEST(EventWheelProperty, MassiveTieBreakIsFifo) {
  EventQueue q;
  std::vector<int> order;
  const Time when = milliseconds(3);  // lands in a far wheel, cascades down
  const auto call_fn = [](void* target, std::uint32_t aux) {
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };
  for (int i = 0; i < 5000; ++i) {
    if (i % 2 == 0) {
      q.push_call(when, &order, static_cast<std::uint32_t>(i), call_fn);
    } else {
      q.push(when, [&order, i] { order.push_back(i); });
    }
  }
  while (!q.empty()) q.run_top();
  ASSERT_EQ(order.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace planck::sim
