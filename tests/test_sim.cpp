// Tests for the simulation substrate: event queue ordering and
// cancellation, the simulation driver, timers, the inline callable, and
// the deterministic PRNG.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace planck::sim {
namespace {

// ---------------------------------------------------------------------------
// Time helpers
// ---------------------------------------------------------------------------

TEST(Time, UnitConstructors) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(milliseconds(3) + microseconds(500), 3'500'000);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_microseconds(nanoseconds(500)), 0.5);
}

TEST(Time, SerializationDelayRoundsUp) {
  // 1538 bytes at 10 Gbps = 1230.4 ns -> 1231 ns.
  EXPECT_EQ(serialization_delay(1538, 10'000'000'000), 1231);
  // 1 byte at 1 Gbps = 8 ns exactly.
  EXPECT_EQ(serialization_delay(1, 1'000'000'000), 8);
  EXPECT_EQ(serialization_delay(0, 1'000'000'000), 0);
  EXPECT_EQ(serialization_delay(100, 0), 0);
}

TEST(Time, BytesInInterval) {
  EXPECT_EQ(bytes_in(seconds(1), 8'000), 1000);
  EXPECT_EQ(bytes_in(microseconds(1), 10'000'000'000), 1250);
  EXPECT_EQ(bytes_in(-5, 10'000'000'000), 0);
}

// ---------------------------------------------------------------------------
// InlineFunction
// ---------------------------------------------------------------------------

TEST(InlineFunction, CallsSmallLambda) {
  int x = 0;
  InlineFunction<void()> f([&x] { x = 42; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(x, 42);
}

TEST(InlineFunction, EmptyIsFalsey) {
  InlineFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int calls = 0;
  InlineFunction<void()> a([&calls] { ++calls; });
  InlineFunction<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunction, ReturnsValues) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, LargeCaptureFallsBackToHeap) {
  struct Big {
    char data[256] = {};
  };
  Big big;
  big.data[0] = 7;
  InlineFunction<char()> f([big] { return big.data[0]; });
  EXPECT_EQ(f(), 7);
  InlineFunction<char()> g(std::move(f));
  EXPECT_EQ(g(), 7);
}

TEST(InlineFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> weak = token;
  {
    InlineFunction<void()> f([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFunction, MoveAssignmentReleasesOldState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  InlineFunction<void()> f([token] { (void)*token; });
  token.reset();
  f = InlineFunction<void()>([] {});
  EXPECT_TRUE(weak.expired());
  f();
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_top();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_top();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ReportsPopTime) {
  EventQueue q;
  q.push(123, [] {});
  Time when = 0;
  q.run_top(&when);
  EXPECT_EQ(when, 123);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int ran = 0;
  q.push(1, [&] { ++ran; });
  const EventId id = q.push(2, [&] { ran += 100; });
  q.push(3, [&] { ++ran; });
  q.cancel(id);
  while (!q.empty()) q.run_top();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, CancelFirstEventAdvancesNextTime) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.push(2, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 2);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InvalidCancelIsIgnored) {
  EventQueue q;
  q.cancel(0);
  q.cancel(999999);
  q.push(1, [] {});
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsSafeNoOp) {
  // Generation-tagged ids: cancelling an id whose event already executed
  // must not disturb anything — including an unrelated event that now
  // occupies the recycled slab slot.
  EventQueue q;
  int ran = 0;
  const EventId first = q.push(1, [&] { ++ran; });
  q.run_top();
  EXPECT_EQ(ran, 1);
  const EventId second = q.push(2, [&] { ran += 10; });  // reuses the slot
  q.cancel(first);   // stale id: no-op, must not kill `second`
  q.cancel(first);   // idempotent
  ASSERT_FALSE(q.empty());
  q.run_top();
  EXPECT_EQ(ran, 11);
  q.cancel(second);  // also already fired: no-op
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledCallbackIsDestroyedPromptly) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> weak = token;
  EventQueue q;
  const EventId id = q.push(100, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(weak.expired());
  q.cancel(id);
  EXPECT_TRUE(weak.expired());  // captured state released at cancel time
}

TEST(EventQueue, TypedEventsInterleaveFifoWithCallbacks) {
  // All three event kinds share one (time, push-order) ordering.
  EventQueue q;
  std::vector<int> order;
  const auto call_fn = [](void* target, std::uint32_t aux) {
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };
  const auto packet_fn = [](void* target, std::uint32_t aux,
                            const net::Packet& pkt) {
    EXPECT_EQ(pkt.payload, 1460u);
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };
  net::Packet pkt;
  pkt.payload = 1460;
  q.push(7, [&order] { order.push_back(0); });
  q.push_call(7, &order, 1, call_fn);
  q.push_packet(7, &order, 2, packet_fn, pkt);
  q.push(7, [&order] { order.push_back(3); });
  q.push_packet(5, &order, 4, packet_fn, pkt);
  while (!q.empty()) q.run_top();
  EXPECT_EQ(order, (std::vector<int>{4, 0, 1, 2, 3}));
}

TEST(EventQueue, TypedEventsAreCancellable) {
  EventQueue q;
  std::vector<int> order;
  const auto call_fn = [](void* target, std::uint32_t aux) {
    static_cast<std::vector<int>*>(target)->push_back(static_cast<int>(aux));
  };
  q.push_call(1, &order, 1, call_fn);
  const EventId id = q.push_call(2, &order, 2, call_fn);
  q.push_call(3, &order, 3, call_fn);
  q.cancel(id);
  while (!q.empty()) q.run_top();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, FarHorizonEventsPopInOrder) {
  // Exercise every wheel level plus the overflow heap: delays from a few ns
  // to minutes, pushed out of order.
  EventQueue q;
  std::vector<Time> popped;
  const Time horizons[] = {
      3,                       // near wheel
      microseconds(50),        // level 1
      milliseconds(7),         // level 2
      milliseconds(900),       // level 3
      seconds(20),             // level 3
      seconds(200),            // overflow heap
      seconds(100) + 1,        // overflow heap (same far page)
      5,
      microseconds(50),        // FIFO tie at a far horizon
  };
  for (const Time t : horizons) q.push(t, [] {});
  while (!q.empty()) {
    Time when = 0;
    q.run_top(&when);
    popped.push_back(when);
  }
  ASSERT_EQ(popped.size(), std::size(horizons));
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.front(), 3);
  EXPECT_EQ(popped.back(), seconds(200));
}

TEST(EventQueue, CancelAcrossWheelLevels) {
  EventQueue q;
  int ran = 0;
  std::vector<EventId> doomed;
  for (const Time t : {Time{10}, microseconds(100), milliseconds(20),
                       seconds(2), seconds(300)}) {
    doomed.push_back(q.push(t, [&] { ran += 1000; }));
    q.push(t + 1, [&] { ++ran; });
  }
  for (const EventId id : doomed) q.cancel(id);
  while (!q.empty()) q.run_top();
  EXPECT_EQ(ran, 5);
}

TEST(EventQueue, ReentrantPushDuringExecution) {
  // An executing event scheduling more events must not invalidate the
  // in-place execution (the slab grows under it).
  EventQueue q;
  int total = 0;
  q.push(1, [&] {
    for (int i = 0; i < 2000; ++i) {
      q.push(2 + i, [&total] { ++total; });
    }
  });
  while (!q.empty()) q.run_top();
  EXPECT_EQ(total, 2000);
}

TEST(EventQueue, StressRandomOrderPopsSorted) {
  EventQueue q;
  Rng rng(99);
  std::vector<Time> popped;
  for (int i = 0; i < 2000; ++i) {
    q.push(static_cast<Time>(rng.below(10000)), [] {});
  }
  while (!q.empty()) {
    Time when = 0;
    q.run_top(&when);
    popped.push_back(when);
  }
  ASSERT_EQ(popped.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  Time seen = -1;
  sim.schedule(milliseconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, milliseconds(5));
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<Time> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 20}));
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(100, [&] { ++ran; });
  const bool more = sim.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(more);
  EXPECT_EQ(sim.now(), 50);
  sim.run_until(200);
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, StopAbortsRun) {
  Simulation sim;
  int ran = 0;
  sim.schedule(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.run();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, PastSchedulesClampToNow) {
  Simulation sim;
  sim.schedule(100, [&] {
    sim.schedule_at(5, [&] { EXPECT_EQ(sim.now(), 100); });
  });
  sim.run();
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(Timer, FiresOnce) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(milliseconds(1));
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleLaterFiresAtNewDeadline) {
  Simulation sim;
  Time fired_at = -1;
  Timer t(sim, [&] { fired_at = sim.now(); });
  t.schedule(milliseconds(1));
  sim.schedule(microseconds(500), [&] { t.schedule(milliseconds(2)); });
  sim.run();
  EXPECT_EQ(fired_at, microseconds(500) + milliseconds(2));
}

TEST(Timer, RescheduleEarlierFiresAtNewDeadline) {
  Simulation sim;
  Time fired_at = -1;
  Timer t(sim, [&] { fired_at = sim.now(); });
  t.schedule(milliseconds(10));
  sim.schedule(microseconds(100), [&] { t.schedule(microseconds(100)); });
  sim.run();
  EXPECT_EQ(fired_at, microseconds(200));
}

TEST(Timer, CancelPreventsFiring) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(milliseconds(1));
  sim.schedule(microseconds(1), [&] { t.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelThenRescheduleWorks) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(milliseconds(1));
  t.cancel();
  t.schedule(milliseconds(2));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(2));
}

TEST(Timer, RepeatedRestartsFireOnceAtLastDeadline) {
  // The TCP RTO pattern: restarted on every ACK, must fire only after the
  // final deadline.
  Simulation sim;
  std::vector<Time> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); });
  t.schedule(milliseconds(1));
  for (int i = 1; i <= 50; ++i) {
    sim.schedule(microseconds(i * 10), [&] { t.schedule(milliseconds(1)); });
  }
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], microseconds(500) + milliseconds(1));
}

TEST(Timer, FiringCanReschedule) {
  Simulation sim;
  int fires = 0;
  Timer t(sim, [&] {
    if (++fires < 3) t.schedule(milliseconds(1));
  });
  t.schedule(milliseconds(1));
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), milliseconds(3));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// Parameterized: the event queue keeps FIFO order at every timestamp for
// various interleavings.
class EventQueueFifoTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFifoTest, StableWithinTimestamp) {
  const int groups = GetParam();
  EventQueue q;
  std::vector<std::pair<Time, int>> order;
  Rng rng(static_cast<std::uint64_t>(groups));
  std::vector<int> counters(static_cast<std::size_t>(groups), 0);
  for (int i = 0; i < 500; ++i) {
    const Time t = static_cast<Time>(rng.below(static_cast<std::uint64_t>(groups)));
    const int seq = counters[static_cast<std::size_t>(t)]++;
    q.push(t, [&order, t, seq] { order.emplace_back(t, seq); });
  }
  while (!q.empty()) q.run_top();
  std::vector<int> next(static_cast<std::size_t>(groups), 0);
  for (const auto& [t, seq] : order) {
    EXPECT_EQ(seq, next[static_cast<std::size_t>(t)]++);
  }
}

INSTANTIATE_TEST_SUITE_P(Interleavings, EventQueueFifoTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace planck::sim
