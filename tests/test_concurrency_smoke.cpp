// Concurrency smoke: the shared-state surfaces hardened for the
// partitioned engine (DESIGN.md §12), exercised from real std::threads so
// ThreadSanitizer has races to hunt. Three surfaces:
//
//   1. obs::MetricRegistry — concurrent registration + counter bumps +
//      histogram observations from N writer threads while an exporter
//      thread renders to_json() in a loop.
//   2. obs::Tracer — concurrent event emission from N component threads
//      while a reader polls size() and renders to_json().
//   3. sim::Simulation — one engine per thread, same seed, no sharing:
//      the partition-owned model. Digests must come out equal, proving
//      engine state has no hidden cross-instance channel (a mutable
//      global would show up here as a digest divergence or a TSan race).
//
// The plain build runs this as an ordinary test; the dedicated TSan CI
// job builds it with -fsanitize=thread, where any unguarded access found
// by planck-lint's guarded-field check would fail loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/partition.hpp"
#include "net/topology.hpp"
#include "tcp/host.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "workload/testbed.hpp"

namespace planck {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 2000;

TEST(ConcurrencySmoke, RegistryExportRacesWriters) {
  obs::MetricRegistry reg;
  // Pre-register one shared counter every writer bumps, so the atomic
  // add path is contended as well as the per-thread registration path.
  obs::Counter& shared = reg.counter("smoke", "shared_ops");

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, &shared, t] {
      const std::string component = "smoke.t" + std::to_string(t);
      obs::Counter& own = reg.counter(component, "ops");
      obs::Histogram& lat = reg.histogram(component, "lat_us", 0.0, 100.0, 50);
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.add();
        own.add();
        lat.observe(static_cast<double>(i % 100));
        reg.gauge(component, "last_i").set(static_cast<double>(i));
      }
    });
  }

  // Exporter races the writers: every render must be a well-formed
  // planck-metrics-v1 document over whatever subset is registered so far.
  std::string last;
  for (int round = 0; round < 50; ++round) {
    last = reg.to_json();
    ASSERT_NE(last.find("\"schema\":\"planck-metrics-v1\""), std::string::npos);
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(shared.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const std::string component = "smoke.t" + std::to_string(t);
    EXPECT_EQ(reg.counter(component, "ops").value(),
              static_cast<std::uint64_t>(kOpsPerThread));
    EXPECT_EQ(reg.histogram(component, "lat_us", 0.0, 100.0, 50).count(),
              static_cast<std::uint64_t>(kOpsPerThread));
  }
  EXPECT_NE(reg.to_json().find("\"shared_ops\""), std::string::npos);
}

TEST(ConcurrencySmoke, TracerEmissionRacesReader) {
  obs::Tracer tracer;

  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&tracer, t] {
      const std::string component = "part" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const sim::Time now{static_cast<std::int64_t>(i) * 1000};
        tracer.instant(now, component, "tick");
        tracer.counter(now, component, "depth", static_cast<double>(i));
      }
    });
  }

  // Reader races the emitters; each snapshot must be internally
  // consistent JSON (every event's tid resolves to a named component).
  for (int round = 0; round < 25; ++round) {
    const std::string doc = tracer.to_json();
    ASSERT_NE(doc.find("\"traceEvents\""), std::string::npos);
  }
  for (std::thread& e : emitters) e.join();

  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kOpsPerThread * 2);
  const std::string doc = tracer.to_json();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(doc.find("part" + std::to_string(t)), std::string::npos);
  }
}

/// One full testbed run on a private Simulation; returns its digest.
std::uint64_t run_partition(std::uint64_t seed) {
  sim::Simulation sim;
  const auto graph = net::make_fat_tree_16(
      net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
  workload::TestbedConfig cfg;
  cfg.seed = seed;
  workload::Testbed bed(sim, graph, cfg);
  for (int i : {0, 1}) {
    bed.host(i)->start_flow(net::host_ip(4 + i), 5001, 1024 * 1024,
                            [](const tcp::FlowStats&) {});
  }
  sim.run_until(sim::milliseconds(50));
  return sim.determinism_digest();
}

TEST(ConcurrencySmoke, ParallelIndependentSimulationsStayDeterministic) {
  // The partition-owned model end to end: one engine per thread, zero
  // shared objects. Same seed must digest identically whether the run
  // happened alone or beside three concurrent engines.
  const std::uint64_t solo = run_partition(42);

  std::vector<std::uint64_t> digests(kThreads, 0);
  std::vector<std::thread> engines;
  engines.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    engines.emplace_back([&digests, t] { digests[static_cast<std::size_t>(t)] = run_partition(42); });
  }
  for (std::thread& e : engines) e.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(digests[static_cast<std::size_t>(t)], solo) << "partition " << t;
  }

  // Different seeds still diverge when run concurrently.
  std::uint64_t other = 0;
  std::thread probe([&other] { other = run_partition(43); });
  probe.join();
  EXPECT_NE(other, solo);
}

/// One sharded-engine run over a k=4 fat-tree with pod-crossing flows;
/// returns the engine digest.
std::uint64_t run_sharded(std::uint64_t seed, int threads) {
  const auto graph = net::make_fat_tree_16(
      net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(5)});
  const net::PartitionMap map = net::make_partition_map(graph);
  sim::ParallelEngine engine(map.num_partitions, map.lookahead(), threads);
  workload::TestbedConfig cfg;
  cfg.seed = seed;
  workload::Testbed bed(engine, map, graph, cfg);
  for (int i : {0, 4, 8, 12}) {
    bed.host(i)->start_flow(net::host_ip((i + 8) % 16), 5001, 1024 * 1024,
                            [](const tcp::FlowStats&) {});
  }
  engine.run_until(sim::milliseconds(50));
  return engine.determinism_digest();
}

TEST(ConcurrencySmoke, PartitionedEngineUnderFourWorkerThreads) {
  // The sharded engine itself under TSan: 4 worker threads drive 5 data
  // partitions (4 pods + core) through lookahead-window barriers, with
  // cross-partition traffic on every agg<->core cable. Any unsynchronized
  // access in the barrier protocol — an outbox write racing the merge, a
  // bound_ read racing the completion phase — is a TSan hit here, and any
  // ordering leak is a digest divergence against the 1-thread run.
  const std::uint64_t sequential = run_sharded(42, 1);
  const std::uint64_t threaded = run_sharded(42, 4);
  EXPECT_EQ(sequential, threaded);

  // Repeat under thread churn: a second 4-thread run must reproduce.
  EXPECT_EQ(run_sharded(42, 4), threaded);
  EXPECT_NE(run_sharded(43, 4), threaded);
}

}  // namespace
}  // namespace planck
