// Tests for the congestion-control specifics added for fidelity to the
// paper's Linux 3.5 testbed: CUBIC growth (including the TCP-friendly
// region), HyStart delay-based slow-start exit, window caps, and the
// model-realism knobs (link clock tolerance, mirror arbitration jitter,
// sender microbursts).

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "tcp/host.hpp"
#include "workload/testbed.hpp"

namespace planck::tcp {
namespace {

workload::TestbedConfig no_planck() {
  workload::TestbedConfig cfg;
  cfg.enable_planck = false;
  return cfg;
}

struct Star {
  explicit Star(int n, workload::TestbedConfig cfg = no_planck())
      : graph(net::make_star(
            n, net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(40)})),
        bed(sim, graph, cfg) {}
  sim::Simulation sim;
  net::TopologyGraph graph;
  workload::Testbed bed;
};

TEST(Cubic, HystartExitsSlowStartBeforeBufferOverflow) {
  // A single flow through an uncongested switch: HyStart must cap the
  // window near the delay-bandwidth product instead of blasting a full
  // 6 MB window into the 4 MB shared buffer. Zero loss is the proof.
  Star star(2);
  FlowStats result;
  star.bed.host(0)->start_flow(net::host_ip(1), 5001, 50 * 1024 * 1024,
                               [&](const FlowStats& s) { result = s; });
  star.sim.run_until(sim::seconds(5));
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.retransmits, 0u);
  EXPECT_GT(result.throughput_bps(), 9e9);
  // Window stayed civilized: well below the 6 MB cap.
  auto* snd = star.bed.host(0)->senders()[0].get();
  EXPECT_LT(snd->cwnd_bytes(), 3 * 1024 * 1024);
}

TEST(Cubic, HystartDisabledOvershootsAndLoses) {
  // Ablation: with HyStart off, slow start overshoots the switch buffer
  // and the flow takes losses — the pathology HyStart exists to avoid.
  workload::TestbedConfig cfg = no_planck();
  cfg.host_config.tcp.hystart_rtt_factor = 0;
  cfg.switch_config.buffer.total_bytes = sim::mebibytes(2);
  Star star(3, cfg);
  FlowStats s1;
  FlowStats s2;
  star.bed.host(0)->start_flow(net::host_ip(2), 5001, 30 * 1024 * 1024,
                               [&](const FlowStats& s) { s1 = s; });
  star.sim.schedule_at(sim::milliseconds(3), [&] {
    star.bed.host(1)->start_flow(net::host_ip(2), 5001, 30 * 1024 * 1024,
                                 [&](const FlowStats& s) { s2 = s; });
  });
  star.sim.run_until(sim::seconds(10));
  ASSERT_TRUE(s1.complete && s2.complete);
  EXPECT_GT(s1.retransmits + s2.retransmits, 0u);
}

TEST(Cubic, RenoVariantStillDeliversEverything) {
  workload::TestbedConfig cfg = no_planck();
  cfg.host_config.tcp.congestion_control = CongestionControl::kReno;
  Star star(2, cfg);
  FlowStats result;
  star.bed.host(0)->start_flow(net::host_ip(1), 5001, 20 * 1024 * 1024,
                               [&](const FlowStats& s) { result = s; });
  star.sim.run_until(sim::seconds(5));
  ASSERT_TRUE(result.complete);
  EXPECT_GT(result.throughput_bps(), 8e9);
}

TEST(Cubic, RecoversSharePromptlyAfterJoiningBusyLink) {
  // The TCP-friendly region at datacenter RTTs: a late flow must claw back
  // a meaningful share within a few hundred ms, not the many seconds pure
  // cubic growth from a small w_max would take.
  Star star(3);
  star.bed.host(0)->start_flow(net::host_ip(2), 5001,
                               1'000'000'000'000LL);
  TcpSender* late = nullptr;
  star.sim.schedule_at(sim::milliseconds(10), [&] {
    late = star.bed.host(1)->start_flow(net::host_ip(2), 5001,
                                        1'000'000'000'000LL);
  });
  star.sim.run_until(sim::milliseconds(400));
  ASSERT_NE(late, nullptr);
  const std::int64_t una_400 = late->snd_una();
  star.sim.run_until(sim::milliseconds(900));
  const double rate =
      static_cast<double>(late->snd_una() - una_400) * 8.0 / 0.5;
  EXPECT_GT(rate, 1.0e9);  // > ~20% of its fair share and climbing
}

TEST(Realism, LinkClockSkewApplied) {
  sim::Simulation simulation;
  const auto graph = net::make_star(
      2, net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(1)});
  workload::TestbedConfig cfg = no_planck();
  cfg.link_rate_ppm = 100.0;
  workload::Testbed bed(simulation, graph, cfg);
  // Send a long back-to-back train on each host's uplink and compare
  // effective rates: they must differ (different skews) but stay within
  // the tolerance band.
  FlowStats r0;
  bed.host(0)->start_flow(net::host_ip(1), 5001, 20 * 1024 * 1024,
                          [&](const FlowStats& s) { r0 = s; });
  simulation.run_until(sim::seconds(2));
  ASSERT_TRUE(r0.complete);
  EXPECT_NEAR(r0.throughput_bps(), 9.3e9, 0.2e9);
}

TEST(Realism, LinkSkewZeroWhenDisabled) {
  sim::Simulation simulation;
  const auto graph = net::make_star(
      2, net::LinkSpec{sim::gigabits_per_sec(10), sim::microseconds(1)});
  workload::TestbedConfig cfg = no_planck();
  cfg.link_rate_ppm = 0.0;
  workload::Testbed bed(simulation, graph, cfg);
  FlowStats r0;
  bed.host(0)->start_flow(net::host_ip(1), 5001, 1024 * 1024,
                          [&](const FlowStats& s) { r0 = s; });
  simulation.run_until(sim::seconds(1));
  EXPECT_TRUE(r0.complete);
}

TEST(Realism, FractionalCarryKeepsExactAverageRate) {
  // 1538-byte frames at 10 Gbps are 1230.4 ns each; over 1000 packets the
  // line must be busy 1,230,400 ns, not 1,231,000.
  sim::Simulation simulation;
  net::Link link(simulation, sim::gigabits_per_sec(10), 0);
  struct Sink : net::Node {
    void handle_packet(const net::Packet&, int) override {}
  } sink;
  link.connect(&sink, 0);
  net::Packet p;
  p.payload = 1460;
  sim::Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    simulation.run_until(t);
    t = link.transmit(p);
  }
  EXPECT_EQ(t, 1'230'400);
}

TEST(Realism, SenderMicroburstsCreateGaps) {
  workload::TestbedConfig cfg = no_planck();
  cfg.host_config.stall_every_bytes = sim::kibibytes(64);
  cfg.host_config.sender_stall_min = sim::microseconds(20);
  cfg.host_config.sender_stall_max = sim::microseconds(20);
  Star star(2, cfg);
  std::vector<sim::Time> stamps;
  star.bed.host(0)->set_tx_hook([&](const net::Packet& p) {
    if (p.payload > 0) stamps.push_back(star.sim.now());
  });
  FlowStats result;
  star.bed.host(0)->start_flow(net::host_ip(1), 5001, 4 * 1024 * 1024,
                               [&](const FlowStats& s) { result = s; });
  star.sim.run_until(sim::seconds(2));
  ASSERT_TRUE(result.complete);
  int big_gaps = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i] - stamps[i - 1] >= sim::microseconds(19)) ++big_gaps;
  }
  // ~4 MiB / 64 KiB = ~64 stalls expected (minus slow-start pauses noise).
  EXPECT_GE(big_gaps, 40);
}

TEST(Realism, MirrorJitterPreventsSingleFlowMonopoly) {
  // Two saturated flows mirrored into one monitor port: with arbitration
  // jitter, samples must interleave rather than one flow owning the
  // sampled stream.
  Star star(4, workload::TestbedConfig{});  // Planck (mirroring) enabled
  star.bed.host(0)->start_flow(net::host_ip(2), 5001, 1'000'000'000'000LL);
  star.bed.host(1)->start_flow(net::host_ip(3), 5001, 1'000'000'000'000LL);
  std::uint64_t from0 = 0;
  std::uint64_t from1 = 0;
  star.bed.collector_by_node(star.graph.switch_node(0))
      ->set_sample_hook([&](const core::Sample& s) {
        if (s.packet.payload == 0 || star.sim.now() < sim::milliseconds(20))
          return;
        if (s.packet.src_ip == net::host_ip(0)) ++from0;
        if (s.packet.src_ip == net::host_ip(1)) ++from1;
      });
  star.sim.run_until(sim::milliseconds(60));
  ASSERT_GT(from0 + from1, 10000u);
  const double share =
      static_cast<double>(from0) / static_cast<double>(from0 + from1);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.65);
}

}  // namespace
}  // namespace planck::tcp
