// Tests for the Planck collector: flow-table maintenance, in/out-port
// inference from the controller-shared routing view (§3.2.1), link
// utilization aggregation, congestion events with flow annotations (§3.3),
// queries, and the raw-sample ring.

#include <gtest/gtest.h>

#include <vector>

#include "core/collector.hpp"
#include "core/flow_table.hpp"
#include "core/opensample.hpp"
#include "sim/simulation.hpp"

namespace planck::core {
namespace {

using net::FlowKey;
using net::Packet;

Packet make_data(int src, int dst, std::uint64_t seq, int tree = 0,
                 std::uint32_t payload = 1460) {
  Packet p;
  p.src_mac = net::host_mac(src);
  p.dst_mac = net::host_mac(dst, tree);
  p.src_ip = net::host_ip(src);
  p.dst_ip = net::host_ip(dst);
  p.src_port = 10000;
  p.dst_port = 5001;
  p.proto = net::Protocol::kTcp;
  p.seq = seq;
  p.payload = payload;
  return p;
}

struct Fixture {
  explicit Fixture(CollectorConfig cfg = {})
      : collector(sim, "c0", 99, cfg) {
    net::SwitchRouteView view;
    view.out_port_by_dst[net::host_mac(1)] = 1;
    view.out_port_by_dst[net::host_mac(1, 2)] = 3;
    view.in_port_by_pair[net::MacPair{net::host_mac(0), net::host_mac(1)}] =
        0;
    view.in_port_by_pair[net::MacPair{net::host_mac(0),
                                      net::host_mac(1, 2)}] = 0;
    collector.update_route_view(view);
    collector.set_link_capacity(1, 10'000'000'000);
    collector.set_link_capacity(3, 10'000'000'000);
  }

  /// Feeds a CBR sample stream for flow 0->1.
  void feed(double rate_bps, sim::Duration duration, int tree = 0) {
    const double interval = 1460 * 8.0 / rate_bps * 1e9;
    const sim::Time start = sim.now();
    for (double t = 0; t < static_cast<double>(duration); t += interval) {
      sim.schedule_at(start + static_cast<sim::Time>(t), [this, tree] {
        collector.handle_packet(make_data(0, 1, seqs_[tree], tree), 0);
        seqs_[tree] += 1460;
      });
    }
    sim.run_until(start + duration);
  }

  sim::Simulation sim;
  Collector collector;
  std::uint64_t seqs_[4] = {};
};

TEST(Collector, TracksFlowsAndSamples) {
  Fixture f;
  f.feed(5e9, sim::milliseconds(2));
  EXPECT_GT(f.collector.samples_received(), 100u);
  EXPECT_EQ(f.collector.flow_table().size(), 1u);
  const FlowRecord* rec =
      f.collector.flow_table().find(make_data(0, 1, 0).flow_key());
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->samples, 100u);
}

TEST(Collector, InfersPortsFromRouteView) {
  Fixture f;
  f.feed(5e9, sim::milliseconds(1));
  const FlowRecord* rec =
      f.collector.flow_table().find(make_data(0, 1, 0).flow_key());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->in_port, 0);
  EXPECT_EQ(rec->out_port, 1);
  EXPECT_EQ(f.collector.inference_misses(), 0u);
}

TEST(Collector, InferenceMatchesOracleMetadata) {
  Fixture f;
  // The mirrored replica carries oracle ports; inference must agree.
  Packet p = make_data(0, 1, 0);
  p.oracle_in_port = 0;
  p.oracle_out_port = 1;
  f.collector.handle_packet(p, 0);
  const FlowRecord* rec = f.collector.flow_table().find(p.flow_key());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->in_port, p.oracle_in_port);
  EXPECT_EQ(rec->out_port, p.oracle_out_port);
}

TEST(Collector, CountsInferenceMissWithoutRouteInfo) {
  Fixture f;
  Packet p = make_data(5, 9, 0);  // no view entry for this pair
  f.collector.handle_packet(p, 0);
  EXPECT_EQ(f.collector.inference_misses(), 1u);
  const FlowRecord* rec = f.collector.flow_table().find(p.flow_key());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->out_port, -1);
}

TEST(Collector, LinkUtilizationTracksFlowRate) {
  Fixture f;
  f.feed(6e9, sim::milliseconds(3));
  EXPECT_NEAR(f.collector.link_utilization_bps(1), 6e9, 6e8);
  EXPECT_EQ(f.collector.link_utilization_bps(3), 0.0);
}

TEST(Collector, UtilizationGoesStaleAfterFlowStops) {
  Fixture f;
  f.feed(6e9, sim::milliseconds(3));
  EXPECT_GT(f.collector.link_utilization_bps(1), 1e9);
  // Advance past the staleness window with no traffic; sweeps run on.
  f.sim.run_until(f.sim.now() + sim::milliseconds(20));
  EXPECT_EQ(f.collector.link_utilization_bps(1), 0.0);
}

TEST(Collector, IdleFlowsEvicted) {
  CollectorConfig cfg;
  cfg.flow_idle_timeout = sim::milliseconds(10);
  Fixture f(cfg);
  f.feed(5e9, sim::milliseconds(1));
  EXPECT_EQ(f.collector.flow_table().size(), 1u);
  f.sim.run_until(f.sim.now() + sim::milliseconds(50));
  EXPECT_EQ(f.collector.flow_table().size(), 0u);
}

TEST(Collector, EvictionReleasesEveryContribution) {
  // Regression for the contributing_bps unwind: every record returned by
  // FlowTable::evict_idle must be subtracted from its port aggregate, and
  // once the last contributor leaves, the aggregate must read exactly 0.0
  // — not FP dust from the add/subtract round trips.
  CollectorConfig cfg;
  cfg.flow_idle_timeout = sim::milliseconds(10);
  Fixture f(cfg);
  f.feed(6e9, sim::milliseconds(2));
  EXPECT_GT(f.collector.link_utilization_bps(1), 1e9);
  EXPECT_EQ(f.collector.evictions(), 0u);
  f.sim.run_until(f.sim.now() + sim::milliseconds(50));
  EXPECT_EQ(f.collector.flow_table().size(), 0u);
  EXPECT_GT(f.collector.evictions(), 0u);
  EXPECT_EQ(f.collector.link_utilization_bps(1), 0.0);
}

TEST(Collector, TreeChangeLeavesNoResidualUtilization) {
  Fixture f;
  f.feed(6e9, sim::milliseconds(2), /*tree=*/0);
  EXPECT_GT(f.collector.link_utilization_bps(1), 4e9);
  // The dst MAC moves to shadow tree 2 (out port 3): the old port's
  // aggregate must return to exactly zero the moment the flow migrates,
  // without waiting for the staleness sweep.
  f.seqs_[2] = f.seqs_[0];
  f.feed(6e9, sim::milliseconds(2), /*tree=*/2);
  EXPECT_EQ(f.collector.link_utilization_bps(1), 0.0);
  EXPECT_GT(f.collector.link_utilization_bps(3), 4e9);
}

TEST(Collector, UtilizationMovesWithReroute) {
  Fixture f;
  f.feed(6e9, sim::milliseconds(2), /*tree=*/0);
  EXPECT_GT(f.collector.link_utilization_bps(1), 4e9);
  // The flow switches to shadow tree 2 (out port 3): contributions move.
  f.seqs_[2] = f.seqs_[0];  // sequence continues
  f.feed(6e9, sim::milliseconds(2), /*tree=*/2);
  EXPECT_GT(f.collector.link_utilization_bps(3), 4e9);
  f.sim.run_until(f.sim.now() + sim::milliseconds(20));
  EXPECT_EQ(f.collector.link_utilization_bps(1), 0.0);
}

TEST(Collector, CongestionEventFiresAboveThreshold) {
  Fixture f;
  std::vector<CongestionEvent> events;
  f.collector.subscribe_congestion(
      [&](const CongestionEvent& e) { events.push_back(e); });
  f.feed(9.4e9, sim::milliseconds(3));
  ASSERT_FALSE(events.empty());
  const CongestionEvent& e = events.front();
  EXPECT_EQ(e.switch_node, 99);
  EXPECT_EQ(e.out_port, 1);
  EXPECT_GT(e.utilization_bps, 0.9 * 10e9);
  EXPECT_EQ(e.capacity_bps, 10'000'000'000);
  ASSERT_EQ(e.flows.size(), 1u);
  EXPECT_NEAR(e.flows[0].rate_bps, 9.4e9, 5e8);
  EXPECT_EQ(e.flows[0].src_mac, net::host_mac(0));
}

TEST(Collector, NoEventBelowThreshold) {
  Fixture f;
  int events = 0;
  f.collector.subscribe_congestion(
      [&](const CongestionEvent&) { ++events; });
  f.feed(5e9, sim::milliseconds(3));
  EXPECT_EQ(events, 0);
}

TEST(Collector, EventsDebounced) {
  CollectorConfig cfg;
  cfg.event_debounce = sim::milliseconds(1);
  Fixture f(cfg);
  int events = 0;
  f.collector.subscribe_congestion(
      [&](const CongestionEvent&) { ++events; });
  f.feed(9.4e9, sim::milliseconds(10));
  // At most ~one per debounce interval.
  EXPECT_LE(events, 12);
  EXPECT_GE(events, 5);
}

TEST(Collector, EventThresholdConfigurable) {
  CollectorConfig cfg;
  cfg.congestion_threshold = 0.5;
  Fixture f(cfg);
  int events = 0;
  f.collector.subscribe_congestion(
      [&](const CongestionEvent&) { ++events; });
  f.feed(6e9, sim::milliseconds(3));
  EXPECT_GT(events, 0);
}

TEST(Collector, FlowsOnLinkSortedByRate) {
  Fixture f;
  // Two flows on port 1: 0->1 fast, 2->1 slow.
  net::SwitchRouteView view;
  view.out_port_by_dst[net::host_mac(1)] = 1;
  view.in_port_by_pair[net::MacPair{net::host_mac(0), net::host_mac(1)}] = 0;
  view.in_port_by_pair[net::MacPair{net::host_mac(2), net::host_mac(1)}] = 2;
  f.collector.update_route_view(view);

  std::uint64_t seq_a = 0;
  std::uint64_t seq_b = 0;
  for (int i = 0; i < 4000; ++i) {
    f.sim.schedule_at(i * 2000, [&f, &seq_a, i] {
      f.collector.handle_packet(make_data(0, 1, seq_a), 0);
      seq_a += 1460;
    });
    if (i % 4 == 0) {
      f.sim.schedule_at(i * 2000 + 500, [&f, &seq_b] {
        Packet p = make_data(2, 1, seq_b);
        p.src_mac = net::host_mac(2);
        p.src_ip = net::host_ip(2);
        f.collector.handle_packet(p, 0);
        seq_b += 1460;
      });
    }
  }
  f.sim.run_until(4000 * 2000);
  const auto flows = f.collector.flows_on_link(1);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_GT(flows[0].rate_bps, flows[1].rate_bps);
  EXPECT_EQ(flows[0].src_mac, net::host_mac(0));
}

TEST(Collector, RawSampleRingBounded) {
  CollectorConfig cfg;
  cfg.sample_ring_capacity = 64;
  Fixture f(cfg);
  f.feed(9e9, sim::milliseconds(1));
  EXPECT_EQ(f.collector.raw_samples().size(), 64u);
  // Newest last.
  EXPECT_GT(f.collector.raw_samples().back().received_at,
            f.collector.raw_samples().front().received_at);
}

TEST(Collector, SampleHookSeesEverySample) {
  Fixture f;
  int hooked = 0;
  f.collector.set_sample_hook([&](const Sample&) { ++hooked; });
  f.feed(5e9, sim::milliseconds(1));
  EXPECT_EQ(static_cast<std::uint64_t>(hooked),
            f.collector.samples_received());
}

TEST(Collector, ArpSamplesRecordedButNotTracked) {
  Fixture f;
  Packet arp;
  arp.proto = net::Protocol::kArp;
  arp.arp_op = net::ArpOp::kRequest;
  f.collector.handle_packet(arp, 0);
  EXPECT_EQ(f.collector.samples_received(), 1u);
  EXPECT_EQ(f.collector.flow_table().size(), 0u);
  EXPECT_EQ(f.collector.raw_samples().size(), 1u);
}

TEST(Collector, PureAcksTrackedWithoutRate) {
  Fixture f;
  Packet ack = make_data(0, 1, 0, 0, 0);
  ack.flags = net::kAck;
  ack.ack = 123456;
  for (int i = 0; i < 100; ++i) f.collector.handle_packet(ack, 0);
  EXPECT_EQ(f.collector.flow_table().size(), 1u);
  const FlowRecord* rec = f.collector.flow_table().find(ack.flow_key());
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->estimator.has_estimate());
  EXPECT_EQ(f.collector.link_utilization_bps(1), 0.0);
}


// OpenSample baseline estimator (§2.1): sparse control-plane samples with
// sequence numbers.

TEST(OpenSample, EstimatesRateFromSparseSamples) {
  OpenSampleEstimator est;
  Packet p = make_data(0, 1, 0);
  // 10 samples, 10 ms apart, of a 2 Gbps flow: seq advances 2.5 MB per gap.
  for (int i = 0; i < 10; ++i) {
    p.seq = static_cast<std::uint64_t>(i) * 2'500'000;
    est.add_sample(i * sim::milliseconds(10), p);
  }
  const auto* fs = est.find(p.flow_key());
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->samples, 10u);
  EXPECT_NEAR(fs->rate_bps(), 2e9, 4e7);
  EXPECT_EQ(fs->window(), 9 * sim::milliseconds(10));
}

TEST(OpenSample, SingleSampleHasNoRate) {
  OpenSampleEstimator est;
  est.add_sample(0, make_data(0, 1, 0));
  const auto* fs = est.find(make_data(0, 1, 0).flow_key());
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->rate_bps(), 0.0);
}

TEST(OpenSample, IgnoresRetransmissionsAndAcks) {
  OpenSampleEstimator est;
  Packet p = make_data(0, 1, 100'000);
  est.add_sample(0, p);
  p.seq = 0;  // retransmission: behind the high-water mark
  est.add_sample(sim::milliseconds(1), p);
  Packet ack = make_data(0, 1, 0, 0, 0);
  est.add_sample(sim::milliseconds(2), ack);
  const auto* fs = est.find(p.flow_key());
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->samples, 1u);
}

TEST(OpenSample, TracksMultipleFlows) {
  OpenSampleEstimator est;
  est.add_sample(0, make_data(0, 1, 0));
  est.add_sample(0, make_data(2, 3, 0));
  EXPECT_EQ(est.flows_tracked(), 2u);
  EXPECT_EQ(est.samples_seen(), 2u);
}

// FlowTable unit tests.

TEST(FlowTable, UpsertCreatesOnce) {
  FlowTable table;
  FlowKey k = make_data(0, 1, 0).flow_key();
  FlowRecord& a = table.upsert(k, 100);
  a.samples = 7;
  FlowRecord& b = table.upsert(k, 200);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.samples, 7u);
  EXPECT_EQ(b.first_seen, 100);
  EXPECT_EQ(b.last_seen, 200);
}

TEST(FlowTable, EvictIdleReturnsRecords) {
  FlowTable table;
  table.upsert(make_data(0, 1, 0).flow_key(), 100);
  table.upsert(make_data(0, 2, 0).flow_key(), 500);
  const auto evicted = table.evict_idle(300);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].last_seen, 100);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, EvictIdleCutoffIsClosed) {
  // Regression: the eviction boundary is a closed interval. A flow last
  // seen *exactly* at the cutoff (idle for exactly idle_timeout) is
  // evicted on this sweep, not deferred to the next one; a flow one tick
  // newer survives.
  FlowTable table;
  table.upsert(make_data(0, 1, 0).flow_key(), 300);  // exactly at cutoff
  table.upsert(make_data(0, 2, 0).flow_key(), 301);  // one tick newer
  const auto evicted = table.evict_idle(300);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].last_seen, 300);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_NE(table.find(make_data(0, 2, 0).flow_key()), nullptr);
}

TEST(FlowTable, FindMissingReturnsNull) {
  FlowTable table;
  EXPECT_EQ(table.find(make_data(0, 1, 0).flow_key()), nullptr);
}

}  // namespace
}  // namespace planck::core
